//! A token-level lexer for the static-analysis pass.
//!
//! The build environment is offline, so `syn` is unavailable; this module
//! is the purpose-built middle ground between "grep with taste" and a full
//! parser. It turns Rust source into a flat token stream — identifiers,
//! numbers, string contents, lifetimes, and (lightly combined) punctuation
//! — while discarding comments and harvesting
//! `charisma-verify: allow(CHxxx)` suppression directives from them.
//!
//! On top of the stream, [`test_item_ranges`] resolves which tokens belong
//! to `#[cfg(test)]`-gated items by tracking *item boundaries*: the
//! attribute may be followed by further attributes, and the guarded item
//! ends either at the matching close of its first brace block or at a
//! terminating semicolon (`use`/`type`/tuple-struct items have no braces
//! at all). This is what fixes the line-based scanner's historical
//! mis-scoping, where the first `{` after the attribute could belong to a
//! *different* item entirely.
//!
//! Every token records its 1-based line and byte position, so rules can
//! reason about adjacency (`<<` is two byte-adjacent `<` tokens) and
//! findings can point at exact source lines.

use std::collections::BTreeMap;

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `unsafe`, ...).
    Ident,
    /// A numeric literal, suffix included (`0`, `0.5`, `1_000u64`).
    Num,
    /// A string literal; `text` holds the *content* (escapes unprocessed).
    Str,
    /// A lifetime (`'a`); `text` includes the tick.
    Lifetime,
    /// Punctuation; common two-char operators (`::`, `->`, `=>`, `==`,
    /// `!=`, `<=`, `>=`, `&&`, `||`) are combined into one token.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (for [`TokKind::Str`], the unquoted content).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// Byte offset of the token's first byte in the source.
    pub pos: usize,
    /// Byte length of the token in the source (quotes/hashes included for
    /// string literals).
    pub len: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// The lexer's output: the token stream plus every suppression directive
/// harvested from comments, keyed by the 1-based line the comment starts
/// on. Directive codes are recorded verbatim (5 characters after
/// `allow(`), so the rule engine can flag unknown codes instead of
/// silently ignoring them.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// `allow(...)` directive codes per line.
    pub allows: BTreeMap<usize, Vec<String>>,
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Width in bytes of the UTF-8 character starting at `b`.
fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn record_allow(allows: &mut BTreeMap<usize, Vec<String>>, text: &str, line: usize) {
    let mut rest = text;
    while let Some(pos) = rest.find("charisma-verify: allow(") {
        let after = &rest[pos + "charisma-verify: allow(".len()..];
        if let Some(code) = after.get(..5) {
            allows.entry(line).or_default().push(code.to_string());
        }
        rest = after;
    }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_char(bytes[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Two-character operators the lexer combines into one [`TokKind::Punct`]
/// token. Shifts (`<<`, `>>`) are deliberately absent: `Vec<Vec<u8>>`
/// closes with two byte-adjacent `>` tokens, and the angle-bracket matcher
/// needs to see them separately.
const TWO_CHAR_PUNCT: &[&str] = &["::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||"];

/// Lex `source` into tokens and suppression directives.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = source[i..].find('\n').map(|p| i + p).unwrap_or(bytes.len());
                record_allow(&mut out.allows, &source[i..end], line);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.min(bytes.len());
                record_allow(&mut out.allows, &source[i..end], start_line);
                i = end;
            }
            b'"' => {
                let start = i;
                let start_line = line;
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                let end = j.min(bytes.len());
                let content_end = end.saturating_sub(1).max(start + 1);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: source[start + 1..content_end].to_string(),
                    line: start_line,
                    pos: start,
                    len: end - start,
                });
                i = end;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let start = i;
                let start_line = line;
                let mut hashes = 0usize;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                let content_start = j + 1; // past the opening quote
                j = content_start;
                let mut content_end = bytes.len();
                let mut end = bytes.len();
                while j < bytes.len() {
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    if bytes[j] == b'"' {
                        let end_hashes = bytes[j + 1..]
                            .iter()
                            .take(hashes)
                            .take_while(|&&b| b == b'#')
                            .count();
                        if end_hashes == hashes {
                            content_end = j;
                            end = j + 1 + hashes;
                            break;
                        }
                    }
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: source[content_start.min(bytes.len())..content_end].to_string(),
                    line: start_line,
                    pos: start,
                    len: end - start,
                });
                i = end;
            }
            b'\'' => {
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip to the closing quote.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    i = (j + 1).min(bytes.len());
                } else if let Some(&next) = bytes.get(i + 1) {
                    let w = utf8_width(next);
                    if bytes.get(i + 1 + w) == Some(&b'\'') {
                        // Plain char literal like 'x' (any UTF-8 width).
                        i += 2 + w;
                    } else if is_ident_start(next) {
                        // Lifetime.
                        let start = i;
                        let mut j = i + 1;
                        while j < bytes.len() && is_ident_char(bytes[j]) {
                            j += 1;
                        }
                        out.tokens.push(Tok {
                            kind: TokKind::Lifetime,
                            text: source[start..j].to_string(),
                            line,
                            pos: start,
                            len: j - start,
                        });
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..j].to_string(),
                    line,
                    pos: start,
                    len: j - start,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        Some(&b) if is_ident_char(b) => j += 1,
                        Some(b'.')
                            if bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
                                && !source[start..j].contains('.') =>
                        {
                            j += 2;
                        }
                        _ => break,
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: source[start..j].to_string(),
                    line,
                    pos: start,
                    len: j - start,
                });
                i = j;
            }
            _ if c.is_ascii() => {
                let two = source.get(i..i + 2);
                let (text, len) = match two {
                    Some(t) if TWO_CHAR_PUNCT.contains(&t) => (t.to_string(), 2),
                    _ => ((c as char).to_string(), 1),
                };
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                    pos: i,
                    len,
                });
                i += len;
            }
            _ => {
                // Non-ASCII outside strings/comments: skip the character.
                i += utf8_width(c);
            }
        }
    }
    out
}

/// Token-index ranges (half-open) of `#[cfg(test)]`-gated items.
///
/// Each range starts at the `#` of the attribute and ends after the item
/// it guards: subsequent attributes are skipped by bracket matching, then
/// the item runs to the matching close of its first brace block — or to
/// the first top-level `;` if one arrives before any brace (a gated
/// `use`, `type`, or unit/tuple struct).
pub fn test_item_ranges(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct("#")
            && tokens[i + 1].is_punct("[")
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct("(")
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(")")
            && tokens[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
            let mut depth = 0usize;
            let mut k = j + 1;
            while k < tokens.len() {
                if tokens[k].is_punct("[") {
                    depth += 1;
                } else if tokens[k].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = (k + 1).min(tokens.len());
        }
        // The guarded item: first brace block, or first `;` before any
        // brace (skipping over parens/brackets so `fn f(x: [u8; 2]);`
        // terminates at the right semicolon).
        let mut end = tokens.len();
        let mut k = j;
        let mut round = 0usize;
        let mut square = 0usize;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct("(") {
                round += 1;
            } else if t.is_punct(")") {
                round = round.saturating_sub(1);
            } else if t.is_punct("[") {
                square += 1;
            } else if t.is_punct("]") {
                square = square.saturating_sub(1);
            } else if t.is_punct(";") && round == 0 && square == 0 {
                end = k + 1;
                break;
            } else if t.is_punct("{") {
                let mut depth = 0usize;
                while k < tokens.len() {
                    if tokens[k].is_punct("{") {
                        depth += 1;
                    } else if tokens[k].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                end = (k + 1).min(tokens.len());
                break;
            }
            k += 1;
        }
        ranges.push((start, end));
        i = end.max(start + 1);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        assert_eq!(
            texts("let x: u32 = 4_994;"),
            ["let", "x", ":", "u32", "=", "4_994", ";"]
        );
    }

    #[test]
    fn two_char_operators_combine_but_shifts_do_not() {
        assert_eq!(
            texts("a == b != c -> d"),
            ["a", "==", "b", "!=", "c", "->", "d"]
        );
        assert_eq!(texts("x << 2"), ["x", "<", "<", "2"]);
        let toks = lex("x << 2").tokens;
        assert_eq!(toks[1].pos + 1, toks[2].pos, "shift halves are adjacent");
    }

    #[test]
    fn floats_keep_their_dot_but_ranges_do_not() {
        assert_eq!(texts("0.5 + 1.0f64"), ["0.5", "+", "1.0f64"]);
        assert_eq!(texts("0..n"), ["0", ".", ".", "n"]);
        assert_eq!(texts("t.0"), ["t", ".", "0"]);
    }

    #[test]
    fn strings_keep_content_comments_vanish() {
        let toks = lex("foo(\"a.b\"); // HashMap\n/* Instant */ bar").tokens;
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "a.b");
        assert!(toks
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "Instant"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = lex(r###"let s = r#"quote " inside"#; let t = "esc\"aped";"###).tokens;
        let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "quote \" inside");
        assert_eq!(strs[1].text, "esc\\\"aped");
    }

    #[test]
    fn char_literals_vanish_lifetimes_survive() {
        assert_eq!(texts("'x' '\\n' 'é'"), Vec::<String>::new());
        assert_eq!(
            texts("fn f<'a>(x: &'a u8)"),
            ["fn", "f", "<", "'a", ">", "(", "x", ":", "&", "'a", "u8", ")"]
        );
    }

    #[test]
    fn allows_are_harvested_per_line() {
        let l = lex("a\nb // charisma-verify: allow(CH001, reason)\nc");
        assert_eq!(l.allows[&2], ["CH001"]);
        assert!(!l.allows.contains_key(&1));
    }

    #[test]
    fn test_ranges_cover_braced_items() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() {}\n}\nfn c() {}";
        let toks = lex(src).tokens;
        let ranges = test_item_ranges(&toks);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        assert!(toks[s].is_punct("#"));
        assert!(toks[e - 1].is_punct("}"));
        let after: Vec<&str> = toks[e..].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(after, ["fn", "c", "(", ")", "{", "}"]);
    }

    #[test]
    fn test_ranges_stop_at_semicolon_items() {
        // The gated `use` ends at its semicolon; the library function that
        // follows must remain visible to the rules.
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { body }";
        let toks = lex(src).tokens;
        let ranges = test_item_ranges(&toks);
        assert_eq!(ranges.len(), 1);
        let (_, e) = ranges[0];
        assert!(toks[e - 1].is_punct(";"));
        assert!(toks[e..].iter().any(|t| t.is_ident("lib")));
    }

    #[test]
    fn test_ranges_skip_interleaved_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code, unused)]\nmod tests { x }\nfn after() {}";
        let toks = lex(src).tokens;
        let ranges = test_item_ranges(&toks);
        assert_eq!(ranges.len(), 1);
        let (_, e) = ranges[0];
        assert!(toks[e..].iter().any(|t| t.is_ident("after")));
        assert!(!toks[ranges[0].0..e].iter().any(|t| t.is_ident("after")));
    }
}
