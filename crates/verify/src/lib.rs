//! `charisma-verify`: the correctness-tooling layer of the CHARISMA
//! reproduction.
//!
//! The whole value of this workspace is that `charisma-ipsc` + `charisma-cfs`
//! produce *deterministic, well-formed* traces standing in for the
//! proprietary NASA Ames data. This crate enforces that claim:
//!
//! - [`lint`] — a project-specific token-level static pass over the
//!   workspace sources (rules `CH001`–`CH010`) catching the constructs that
//!   historically break determinism: hash-ordered iteration, raw `f64` time
//!   comparison, panicking library paths, ambient entropy / wall clocks,
//!   truncating casts in the codec, `unsafe`, unsanctioned concurrency,
//!   placeholder panics and float equality, stale suppressions, and
//!   code/fixture metric-name drift. Built on the [`lex`] tokenizer and the
//!   [`consistency`] cross-artifact check; the walk is parallel with
//!   deterministic, sorted findings, and `lint --json` emits them
//!   machine-readably for CI annotation.
//! - [`determinism`] — an end-to-end harness that runs the
//!   workload→simulate→trace pipeline twice with the same seed and diffs a
//!   streaming hash of the trace records, reporting the first divergent
//!   record on failure.
//! - [`metrics`] — the metrics-snapshot gate: the observability layer's
//!   deterministic core (counters/gauges/histograms) is diffed against a
//!   checked-in fixture, and an `N`-worker run must merge to the same core
//!   as the serial run.
//! - [`chaos`] — the same repeatability and worker-count-invariance
//!   checks, run *under the canonical fault-injection plan*, plus a
//!   fault-metrics snapshot gate — the proof that the chaos layer is
//!   deterministic and the recovery machinery actually engages.
//! - [`archive`] — the trace-archive gate: the columnar archive's bytes
//!   are canonical (worker-count invariant and pinned by a hash fixture),
//!   the archive round-trips the merged stream exactly, and zone-map
//!   pruning skips segments without changing any query result.
//! - [`serve`] — the archive-service gate: every `(ingest workers,
//!   interleave seed)` schedule publishes byte-identical per-tenant
//!   catalogs, mid-ingest snapshots replay exactly their pinned prefix,
//!   federated scans match the concat-and-stable-sort oracle, and the
//!   pipeline's serve sink matches its memory sink byte for byte.
//!
//! - [`bench`] — the perf-trajectory record: one run of the pinned
//!   pipeline, wall-clock timed, rendered as the `BENCH_N.json` breadcrumb
//!   the bench-smoke CI job leaves per PR.
//!
//! The binary (`charisma-verify lint|determinism|metrics|chaos|archive|bench`)
//! is the gate CI and all future perf/scaling PRs run behind.

pub mod archive;
pub mod bench;
pub mod chaos;
pub mod consistency;
pub mod determinism;
pub mod lex;
pub mod lint;
pub mod metrics;
pub mod serve;

/// Whether this build of the verifier carries the workspace's runtime
/// `invariant!` assertions. The CI chaos job builds with
/// `--features invariants` so the fault machinery is exercised with every
/// internal consistency check live.
pub const INVARIANTS_ENABLED: bool = cfg!(feature = "invariants");

pub use archive::{archive_fixture_line, check_archive_gate, ArchiveGateReport};
pub use bench::{compare as compare_bench, run_bench, BenchComparison, BenchRecord};
pub use chaos::{
    chaos_metrics_json, chaos_plan, check_chaos_determinism, check_chaos_shard_equivalence,
    check_fault_activity, diff_plan,
};
pub use consistency::{check_metric_consistency, fixture_metric_names, MetricReg};
pub use determinism::{
    check_pipeline_determinism, check_shard_equivalence, check_sharded_determinism, fnv1a_hash,
    DeterminismReport, Divergence,
};
pub use lint::{findings_to_json, lint_workspace, Finding, LintConfig, Rule};
pub use metrics::{check_metrics_shard_equivalence, core_metrics_json, diff_json, JsonDiff};
pub use serve::{check_serve_gate, ServeGateReport};
