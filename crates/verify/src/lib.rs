//! `charisma-verify`: the correctness-tooling layer of the CHARISMA
//! reproduction.
//!
//! The whole value of this workspace is that `charisma-ipsc` + `charisma-cfs`
//! produce *deterministic, well-formed* traces standing in for the
//! proprietary NASA Ames data. This crate enforces that claim:
//!
//! - [`lint`] — a project-specific static pass over the workspace sources
//!   (rules `CH001`–`CH004`) catching the constructs that historically break
//!   determinism: hash-ordered iteration, raw `f64` time comparison,
//!   panicking library paths, and ambient entropy / wall clocks.
//! - [`determinism`] — an end-to-end harness that runs the
//!   workload→simulate→trace pipeline twice with the same seed and diffs a
//!   streaming hash of the trace records, reporting the first divergent
//!   record on failure.
//! - [`metrics`] — the metrics-snapshot gate: the observability layer's
//!   deterministic core (counters/gauges/histograms) is diffed against a
//!   checked-in fixture, and an `N`-worker run must merge to the same core
//!   as the serial run.
//!
//! The binary (`charisma-verify lint|determinism|metrics`) is the gate CI
//! and all future perf/scaling PRs run behind.

pub mod determinism;
pub mod lint;
pub mod metrics;

pub use determinism::{
    check_pipeline_determinism, check_shard_equivalence, check_sharded_determinism,
    DeterminismReport, Divergence,
};
pub use lint::{lint_workspace, Finding, LintConfig, Rule};
pub use metrics::{check_metrics_shard_equivalence, core_metrics_json, diff_json, JsonDiff};
