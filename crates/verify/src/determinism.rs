//! End-to-end determinism harness.
//!
//! `charisma-verify determinism` runs the full workload→simulate→trace
//! pipeline twice with the same seed and compares a streaming hash of every
//! emitted record — the raw per-node trace stream *and* the postprocessed
//! (clock-rectified, globally ordered) stream. Any divergence is localized
//! to the first differing record, which is usually enough to name the
//! offending `HashMap` iteration or unseeded RNG.
//!
//! The harness is deliberately two-layer:
//! - [`check_determinism`] compares any two record streams — the generic
//!   engine, used by the tests to prove the harness *fails* on injected
//!   nondeterminism;
//! - [`check_pipeline_determinism`] instantiates it on the real pipeline.

use charisma_core::report::Report;
use charisma_ipsc::FaultPlan;
use charisma_trace::codec;
use charisma_trace::postprocess::postprocess;
use charisma_trace::OrderedEvent;
use charisma_workload::shard::generate_sharded;
use charisma_workload::{generate, GeneratorConfig};

/// Where in the pipeline the record streams first disagreed.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Ordinal of the first differing record (0-based).
    pub index: u64,
    /// Hex dump of the record from the first run (empty if the stream ended).
    pub first: String,
    /// Hex dump of the record from the second run (empty if the stream ended).
    pub second: String,
}

/// Outcome of a determinism check.
#[derive(Clone, Debug)]
pub struct DeterminismReport {
    /// Total records compared (up to the divergence, if any).
    pub records_checked: u64,
    /// Streaming FNV-1a hash over all compared records of the first run.
    pub stream_hash: u64,
    /// First disagreement, or `None` if the streams are identical.
    pub divergence: Option<Divergence>,
}

impl DeterminismReport {
    /// Did the two runs produce byte-identical streams?
    pub fn is_deterministic(&self) -> bool {
        self.divergence.is_none()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a over one byte slice — the workspace's standard fixture hash
/// (the same function the streaming determinism harness accumulates).
pub fn fnv1a_hash(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, bytes);
    hash
}

fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

/// Compare two record streams in lockstep, reporting the first divergence.
///
/// Memory use is O(1) in the stream length: records are hashed and dropped
/// as they are consumed.
pub fn check_determinism<A, B>(first: A, second: B) -> DeterminismReport
where
    A: IntoIterator<Item = Vec<u8>>,
    B: IntoIterator<Item = Vec<u8>>,
{
    let mut a = first.into_iter();
    let mut b = second.into_iter();
    let mut hash = FNV_OFFSET;
    let mut index = 0u64;
    loop {
        match (a.next(), b.next()) {
            (None, None) => {
                return DeterminismReport {
                    records_checked: index,
                    stream_hash: hash,
                    divergence: None,
                }
            }
            (ra, rb) => {
                let da = ra.as_deref().unwrap_or_default();
                let db = rb.as_deref().unwrap_or_default();
                if da != db {
                    return DeterminismReport {
                        records_checked: index,
                        stream_hash: hash,
                        divergence: Some(Divergence {
                            index,
                            first: hex(da),
                            second: hex(db),
                        }),
                    };
                }
                fnv1a(&mut hash, da);
                index += 1;
            }
        }
    }
}

/// Append one raw trace's records — header, per-node block heads, events —
/// onto `records`.
fn push_trace_records(records: &mut Vec<Vec<u8>>, trace: &charisma_trace::Trace) {
    let mut buf = Vec::new();
    codec::encode_header(&trace.header, &mut buf);
    records.push(buf);

    for block in &trace.blocks {
        let mut head = Vec::with_capacity(18);
        head.extend_from_slice(&block.node.to_le_bytes());
        head.extend_from_slice(&block.send_local.as_micros().to_le_bytes());
        head.extend_from_slice(&block.recv_service.as_micros().to_le_bytes());
        records.push(head);
        for event in &block.events {
            let mut rec = Vec::with_capacity(codec::encoded_len(event));
            codec::encode_event(event, &mut rec);
            records.push(rec);
        }
    }
}

/// Encode one rectified, globally ordered event as a record.
fn ordered_record(ordered: &OrderedEvent) -> Vec<u8> {
    let mut rec = Vec::with_capacity(26);
    rec.extend_from_slice(&ordered.node.to_le_bytes());
    let event = charisma_trace::record::Event {
        local_time: ordered.time,
        body: ordered.body,
    };
    codec::encode_event(&event, &mut rec);
    rec
}

/// Every record the pipeline emits for `seed` at `scale`, encoded.
///
/// The stream interleaves four layers so a divergence pinpoints the stage
/// that broke: the trace header, each raw per-node record (with its block's
/// node and timestamps), each postprocessed ordered record, and finally the
/// rendered analysis report — so a nondeterministic *analysis* (e.g.
/// hash-ordered iteration inside a figure) is caught even when the event
/// streams agree.
pub fn pipeline_record_stream(seed: u64, scale: f64) -> Vec<Vec<u8>> {
    let workload = generate(GeneratorConfig {
        scale,
        seed,
        ..Default::default()
    });
    let trace = &workload.trace;

    let mut records = Vec::with_capacity(trace.event_count() * 2 + 2);
    push_trace_records(&mut records, trace);

    let events = postprocess(trace);
    for ordered in &events {
        records.push(ordered_record(ordered));
    }

    let report = Report::from_stream(events);
    records.push(report.render().into_bytes());

    records
}

/// Every record the *sharded* pipeline emits for `seed` at `scale` on
/// `workers` threads, encoded.
///
/// Layers, in order: each shard's raw trace (header + blocks + events, in
/// shard order), then the deterministically merged ordered stream, then the
/// rendered analysis report. The workload is always partitioned into
/// [`charisma_workload::shard::LOGICAL_SHARDS`] logical shards regardless
/// of `workers`, so this stream must be byte-identical for every worker
/// count — [`check_shard_equivalence`] is that claim as a check.
pub fn sharded_record_stream(seed: u64, scale: f64, workers: usize) -> Vec<Vec<u8>> {
    sharded_record_stream_with_faults(seed, scale, workers, FaultPlan::none())
}

/// [`sharded_record_stream`] under a fault-injection plan.
///
/// The chaos harness ([`crate::chaos`]) instantiates the same
/// worker-count-invariance checks on a faulted run: fault decisions are
/// pure hashes of stable identities, so the stream must stay
/// byte-identical for every worker count even while faults fire.
pub fn sharded_record_stream_with_faults(
    seed: u64,
    scale: f64,
    workers: usize,
    faults: FaultPlan,
) -> Vec<Vec<u8>> {
    let sharded = generate_sharded(
        &GeneratorConfig {
            scale,
            seed,
            faults,
            ..Default::default()
        },
        workers,
    );

    let mut records = Vec::with_capacity(sharded.event_count() * 2 + 2);
    for shard in &sharded.shards {
        push_trace_records(&mut records, &shard.trace);
    }

    let report = Report::from_stream(
        sharded
            .merged_events()
            .inspect(|e| records.push(ordered_record(e))),
    );
    records.push(report.render().into_bytes());

    records
}

/// Run the pipeline twice with the same seed and diff the record streams.
pub fn check_pipeline_determinism(seed: u64, scale: f64) -> DeterminismReport {
    check_determinism(
        pipeline_record_stream(seed, scale),
        pipeline_record_stream(seed, scale),
    )
}

/// Run the sharded pipeline twice on `workers` threads and diff the
/// record streams — catches racy merge state or cross-thread ordering
/// leaks that a single run can't see.
pub fn check_sharded_determinism(seed: u64, scale: f64, workers: usize) -> DeterminismReport {
    check_determinism(
        sharded_record_stream(seed, scale, workers),
        sharded_record_stream(seed, scale, workers),
    )
}

/// Diff the serial (1-worker) sharded run against a `workers`-thread run.
///
/// This is the pipeline's central guarantee: worker count is an execution
/// detail, not an input. Any divergence means the partition, the per-shard
/// RNG derivation, or the merge depends on scheduling.
pub fn check_shard_equivalence(seed: u64, scale: f64, workers: usize) -> DeterminismReport {
    check_determinism(
        sharded_record_stream(seed, scale, 1),
        sharded_record_stream(seed, scale, workers),
    )
}
