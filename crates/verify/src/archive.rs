//! The trace-archive gate.
//!
//! `charisma-store` makes three promises the rest of the workspace builds
//! on, and this module turns each into a CI check:
//!
//! 1. **Canonical bytes** — the archive a pipeline run writes is a pure
//!    function of seed and scale: byte-identical across worker counts,
//!    and pinned by a checked-in FNV-1a hash fixture
//!    (`crates/verify/fixtures/archive_hash.txt`) so any format or
//!    encoding change is visible in review.
//! 2. **Exact round trip** — reopening the archive and scanning it with
//!    the match-everything query reproduces the pipeline's merged event
//!    stream record-for-record, and the report computed *from the
//!    archive* renders identically to the report the pipeline computed
//!    in memory.
//! 3. **Pruning is pure optimization** — a time-window query must prune
//!    at least one segment (`store.segments_pruned > 0` at gate scale)
//!    while returning exactly the records a plain filter of the full
//!    stream returns, with serial and multi-worker scans agreeing.

use charisma::prelude::*;
use charisma::store::StoreMetrics;

use crate::determinism::fnv1a_hash;

/// Outcome of the archive gate: the canonical fixture line the run
/// produced, plus every complaint (empty means the gate passed).
#[derive(Clone, Debug)]
pub struct ArchiveGateReport {
    /// The fixture line for this seed/scale (hash, size, shape).
    pub fixture_line: String,
    /// Human-readable violations, empty on success.
    pub complaints: Vec<String>,
}

/// Render the archive-hash fixture line for one serial pipeline run.
///
/// One line, fully self-describing:
/// `seed=… scale=… fnv1a=0x… bytes=… rows=… segments=…`
pub fn archive_fixture_line(seed: u64, scale: f64) -> Result<String, charisma::Error> {
    let bytes = archive_bytes(seed, scale, 1)?;
    let archive = Archive::from_bytes(bytes.clone())?;
    Ok(format!(
        "seed={} scale={} fnv1a={:#018x} bytes={} rows={} segments={}\n",
        seed,
        scale,
        fnv1a_hash(&bytes),
        bytes.len(),
        archive.rows(),
        archive.segments(),
    ))
}

/// The archive bytes of one pipeline run on `workers` threads.
fn archive_bytes(seed: u64, scale: f64, workers: usize) -> Result<Vec<u8>, charisma::Error> {
    let out = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .shards(workers)
        .sink(charisma::ArchiveSink::Memory)
        .run()?;
    out.archive
        .ok_or(charisma::Error::Store(StoreError::Corrupt(
            "pipeline produced no archive despite an in-memory sink",
        )))
}

/// Run the full archive gate at `seed`/`scale`, scanning with `workers`
/// threads where the scan is parallel.
pub fn check_archive_gate(
    seed: u64,
    scale: f64,
    workers: usize,
) -> Result<ArchiveGateReport, charisma::Error> {
    let mut complaints = Vec::new();

    // One serial run supplies the reference stream, report, and bytes.
    let out = Pipeline::new()
        .seed(seed)
        .scale(scale)
        .sink(charisma::ArchiveSink::Memory)
        .run()?;
    let bytes = out
        .archive
        .clone()
        .ok_or(charisma::Error::Store(StoreError::Corrupt(
            "pipeline produced no archive despite an in-memory sink",
        )))?;

    // 1. Canonical bytes: worker count must not leak into the format.
    for n in [2, workers.max(2)] {
        let other = archive_bytes(seed, scale, n)?;
        if other != bytes {
            complaints.push(format!(
                "archive bytes from a {n}-worker run differ from the serial run \
                 ({} vs {} bytes, fnv1a {:#018x} vs {:#018x})",
                other.len(),
                bytes.len(),
                fnv1a_hash(&other),
                fnv1a_hash(&bytes),
            ));
        }
    }

    let archive = Archive::from_bytes(bytes)?;

    // 2a. Round trip: the all-pass scan reproduces the merged stream.
    let reread = archive.query(Query::all()).workers(workers).events()?;
    if reread != out.events {
        let first_diff = reread
            .iter()
            .zip(&out.events)
            .position(|(a, b)| a != b)
            .unwrap_or(reread.len().min(out.events.len()));
        complaints.push(format!(
            "archive round trip diverges from the in-memory stream at record \
             {first_diff} ({} archived vs {} generated)",
            reread.len(),
            out.events.len(),
        ));
    }

    // 2b. The report computed from the archive renders identically to the
    // report the pipeline computed in the same pass that fed the writer.
    let archived_report = archive.query(Query::all()).workers(workers).report()?;
    if archived_report.render() != out.report.render() {
        complaints.push(
            "report from the all-pass archive query renders differently from \
             the pipeline's in-memory report"
                .to_owned(),
        );
    }

    // 3. Predicate pushdown: a middle-third time window must prune
    // segments yet agree exactly with a plain filter of the full stream.
    if let Some((t0, t1)) = archive.time_span() {
        let span = t1.as_micros() - t0.as_micros();
        let window = Query::all().time_window(
            SimTime::from_micros(t0.as_micros() + span / 3),
            SimTime::from_micros(t0.as_micros() + 2 * span / 3),
        );
        let registry = MetricsRegistry::new();
        let pruned = archive
            .query(window.clone())
            .workers(workers)
            .attach_metrics(StoreMetrics::register(&registry))
            .events()?;
        let want: Vec<OrderedEvent> = out
            .events
            .iter()
            .filter(|e| window.matches(e))
            .copied()
            .collect();
        if pruned != want {
            complaints.push(format!(
                "time-window query returned {} records; a plain filter of the \
                 stream returns {}",
                pruned.len(),
                want.len(),
            ));
        }
        let snap = registry.snapshot();
        let pruned_segments = snap.counters.get("store.segments_pruned").copied();
        if pruned_segments.unwrap_or(0) == 0 {
            complaints.push(format!(
                "middle-third time window pruned no segments (archive has {}) — \
                 zone-map pushdown is not engaging",
                archive.segments(),
            ));
        }
        // Serial scan of the same query must agree with the parallel one.
        let serial = archive.query(window).events()?;
        if serial != pruned {
            complaints.push(format!(
                "serial scan and {workers}-worker scan of the same query \
                 disagree ({} vs {} records)",
                serial.len(),
                pruned.len(),
            ));
        }
    } else {
        complaints.push("archive is empty at gate scale — nothing to prune".to_owned());
    }

    Ok(ArchiveGateReport {
        fixture_line: archive_fixture_line(seed, scale)?,
        complaints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_line_is_stable_and_self_describing() {
        let a = archive_fixture_line(4994, 0.01).expect("runs");
        let b = archive_fixture_line(4994, 0.01).expect("runs");
        assert_eq!(a, b);
        assert!(a.starts_with("seed=4994 scale=0.01 fnv1a=0x"));
        assert!(a.contains(" rows=") && a.contains(" segments="));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn gate_passes_at_test_scale() {
        let report = check_archive_gate(4994, 0.01, 4).expect("runs");
        assert!(
            report.complaints.is_empty(),
            "unexpected complaints: {:?}",
            report.complaints
        );
        assert_eq!(
            report.fixture_line,
            archive_fixture_line(4994, 0.01).expect("runs")
        );
    }
}
