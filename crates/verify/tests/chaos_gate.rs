//! The chaos gate as a test: the checked-in fault-plan and chaos-metrics
//! fixtures must match what the current code produces, and an *empty*
//! plan must be provably free — byte-identical streams and metrics.
//!
//! If the chaos fixture drifts after an intentional change, regenerate
//! with `cargo run -p charisma-verify -- chaos --write` and commit it
//! alongside the code.

use charisma_ipsc::FaultPlan;
use charisma_verify::determinism::{check_determinism, sharded_record_stream_with_faults};
use charisma_verify::{chaos_metrics_json, check_fault_activity, diff_json, diff_plan};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/fixtures/metrics_snapshot_chaos.json"
);
const PLAN_FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/fault_plan_chaos.txt");

#[test]
fn plan_fixture_matches_builtin() {
    let text = std::fs::read_to_string(PLAN_FIXTURE).expect("plan fixture readable");
    let parsed = FaultPlan::parse(&text).expect("plan fixture parses");
    assert_eq!(diff_plan(&parsed), None, "plan fixture drifted");
}

#[test]
fn chaos_fixture_matches_current_code() {
    let expected = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let actual = chaos_metrics_json(4994, 0.05, 1).expect("chaos pipeline runs");
    let diffs = diff_json(&expected, &actual);
    assert!(
        diffs.is_empty(),
        "chaos metrics fixture out of date: {} line(s) differ (first: {})\n\
         regenerate with: cargo run -p charisma-verify -- chaos --write",
        diffs.len(),
        diffs[0]
    );
    assert!(
        check_fault_activity(&actual).is_empty(),
        "fault counters must show the chaos machinery engaged"
    );
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    // The acceptance criterion for the whole fault layer: an all-zero
    // plan — even one with a nonzero seed and retry policy — attaches no
    // fault state and changes nothing: not one record, not one metric
    // key.
    let mut zeroed = FaultPlan::none();
    zeroed.seed = 0xDEAD_BEEF;
    zeroed.retry.max_retries = 9;
    assert!(zeroed.is_empty(), "rates are what make a plan non-empty");
    let with_zeroed_plan = sharded_record_stream_with_faults(4994, 0.01, 2, zeroed);
    let plain = charisma_verify::determinism::sharded_record_stream(4994, 0.01, 2);
    let report = check_determinism(with_zeroed_plan, plain);
    assert!(
        report.is_deterministic(),
        "empty plan changed the stream at record {:?}",
        report.divergence.map(|d| d.index)
    );
}
