//! Every lint rule proved against fixture sources that must and must not
//! trigger it. The fixtures live in `fixtures/` (outside `src/`, so the
//! workspace walk never lints them) and are scanned under a simulated
//! simulation-crate path.

use charisma_verify::lint::{scan_source, scope_for, Rule};

/// Scan `source` as if it sat in a fully-scoped simulation crate.
fn scan(source: &str) -> Vec<charisma_verify::Finding> {
    let rel = "crates/ipsc/src/fixture.rs";
    scan_source(rel, source, scope_for(rel))
}

fn codes(source: &str) -> Vec<&'static str> {
    scan(source).iter().map(|f| f.rule.code()).collect()
}

#[test]
fn ch001_fires_on_hash_containers() {
    let findings = scan(include_str!("../fixtures/ch001_trigger.rs"));
    let ch001 = findings.iter().filter(|f| f.rule == Rule::Ch001).count();
    // Two imports + one HashSet decl + one HashMap decl with two mentions.
    assert!(ch001 >= 4, "expected >=4 CH001 findings, got {findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Ch001));
}

#[test]
fn ch001_quiet_on_ordered_containers_comments_strings_tests() {
    assert_eq!(codes(include_str!("../fixtures/ch001_clean.rs")), [""; 0]);
}

#[test]
fn ch002_fires_on_f64_time_comparison() {
    let findings = scan(include_str!("../fixtures/ch002_trigger.rs"));
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Ch002);
    assert_eq!(findings[0].line, 3);
}

#[test]
fn ch002_quiet_on_reporting_and_integer_comparison() {
    assert_eq!(codes(include_str!("../fixtures/ch002_clean.rs")), [""; 0]);
}

#[test]
fn ch002_exempts_the_time_module_itself() {
    let rel = "crates/ipsc/src/time.rs";
    let findings = scan_source(
        rel,
        include_str!("../fixtures/ch002_trigger.rs"),
        scope_for(rel),
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::Ch002),
        "{findings:#?}"
    );
}

#[test]
fn ch003_counts_every_panic_site() {
    let findings = scan(include_str!("../fixtures/ch003_trigger.rs"));
    let ch003 = findings.iter().filter(|f| f.rule == Rule::Ch003).count();
    assert_eq!(ch003, 3, "unwrap + expect + panic!: {findings:#?}");
}

#[test]
fn ch003_quiet_on_typed_errors_and_test_panics() {
    assert_eq!(codes(include_str!("../fixtures/ch003_clean.rs")), [""; 0]);
}

#[test]
fn ch004_fires_on_wall_clocks_and_ambient_entropy() {
    let findings = scan(include_str!("../fixtures/ch004_trigger.rs"));
    let ch004 = findings.iter().filter(|f| f.rule == Rule::Ch004).count();
    assert_eq!(ch004, 3, "Instant + SystemTime + thread_rng: {findings:#?}");
}

#[test]
fn ch004_quiet_on_seeded_rngs() {
    assert_eq!(codes(include_str!("../fixtures/ch004_clean.rs")), [""; 0]);
}

#[test]
fn inline_allow_suppresses_only_its_line() {
    let source = include_str!("../fixtures/suppressed.rs");
    let findings = scan(source);
    // The import line is suppressed; the signature and body lines are not.
    assert!(
        findings.iter().all(|f| f.line != 3),
        "allow directive ignored: {findings:#?}"
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == Rule::Ch001).count(),
        2,
        "{findings:#?}"
    );
}

#[test]
fn non_simulation_paths_are_out_of_scope() {
    for rel in [
        "crates/core/src/analyze.rs",
        "crates/ipsc/tests/integration.rs",
        "crates/ipsc/benches/bench.rs",
        "tests/end_to_end.rs",
    ] {
        let findings = scan_source(
            rel,
            include_str!("../fixtures/ch001_trigger.rs"),
            scope_for(rel),
        );
        assert!(
            findings.is_empty(),
            "{rel} should be unscoped: {findings:#?}"
        );
    }
}

#[test]
fn workload_is_scoped_for_ch004_only_rng_rules() {
    let scope = scope_for("crates/workload/src/apps.rs");
    assert!(!scope.ch001 && !scope.ch002 && !scope.ch003 && scope.ch004);
}

#[test]
fn the_workspace_itself_is_clean() {
    // The repository must satisfy its own lint: this is the same check CI
    // runs via the binary, kept here so `cargo test` alone catches drift.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify has a workspace root")
        .to_path_buf();
    let findings =
        charisma_verify::lint_workspace(&charisma_verify::LintConfig::new(root)).expect("walk");
    assert!(findings.is_empty(), "{findings:#?}");
}
