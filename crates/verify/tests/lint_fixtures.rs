//! Every lint rule proved against fixture sources that must and must not
//! trigger it. The fixtures live in `fixtures/` (outside `src/`, so the
//! workspace walk never lints them) and are scanned under a simulated
//! simulation-crate path.

use charisma_verify::lint::{findings_to_json, scan_source, scope_for, Rule};

/// Scan `source` as if it sat in a fully-scoped simulation crate.
fn scan(source: &str) -> Vec<charisma_verify::Finding> {
    let rel = "crates/ipsc/src/fixture.rs";
    scan_source(rel, source, scope_for(rel))
}

/// Scan `source` as if it sat in the store crate (the only CH005 scope).
fn scan_store(source: &str) -> Vec<charisma_verify::Finding> {
    let rel = "crates/store/src/fixture.rs";
    scan_source(rel, source, scope_for(rel))
}

fn codes(source: &str) -> Vec<&'static str> {
    scan(source).iter().map(|f| f.rule.code()).collect()
}

#[test]
fn ch001_fires_on_hash_containers() {
    let findings = scan(include_str!("../fixtures/ch001_trigger.rs"));
    let ch001 = findings.iter().filter(|f| f.rule == Rule::Ch001).count();
    // Two imports + one HashSet decl + one HashMap decl with two mentions.
    assert!(ch001 >= 4, "expected >=4 CH001 findings, got {findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Ch001));
}

#[test]
fn ch001_quiet_on_ordered_containers_comments_strings_tests() {
    assert_eq!(codes(include_str!("../fixtures/ch001_clean.rs")), [""; 0]);
}

#[test]
fn ch002_fires_on_f64_time_comparison() {
    let findings = scan(include_str!("../fixtures/ch002_trigger.rs"));
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Ch002);
    assert_eq!(findings[0].line, 3);
}

#[test]
fn ch002_quiet_on_reporting_and_integer_comparison() {
    assert_eq!(codes(include_str!("../fixtures/ch002_clean.rs")), [""; 0]);
}

#[test]
fn ch002_exempts_the_time_module_itself() {
    let rel = "crates/ipsc/src/time.rs";
    let findings = scan_source(
        rel,
        include_str!("../fixtures/ch002_trigger.rs"),
        scope_for(rel),
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::Ch002),
        "{findings:#?}"
    );
}

#[test]
fn ch003_counts_every_panic_site() {
    let findings = scan(include_str!("../fixtures/ch003_trigger.rs"));
    let ch003 = findings.iter().filter(|f| f.rule == Rule::Ch003).count();
    assert_eq!(ch003, 3, "unwrap + expect + panic!: {findings:#?}");
}

#[test]
fn ch003_quiet_on_typed_errors_and_test_panics() {
    assert_eq!(codes(include_str!("../fixtures/ch003_clean.rs")), [""; 0]);
}

#[test]
fn ch004_fires_on_wall_clocks_and_ambient_entropy() {
    let findings = scan(include_str!("../fixtures/ch004_trigger.rs"));
    let ch004 = findings.iter().filter(|f| f.rule == Rule::Ch004).count();
    assert_eq!(ch004, 3, "Instant + SystemTime + thread_rng: {findings:#?}");
}

#[test]
fn ch004_quiet_on_seeded_rngs() {
    assert_eq!(codes(include_str!("../fixtures/ch004_clean.rs")), [""; 0]);
}

#[test]
fn ch002_ignores_generic_angle_brackets() {
    // `Vec<f64>` on the same line as as_secs_f64 is not a comparison —
    // the historical line-based scanner flagged exactly this shape.
    let source = "pub fn spans(ts: Vec<SimTime>) -> Vec<f64> {\n    \
                  let out: Vec<f64> = ts.iter().map(|t| t.as_secs_f64()).collect::<Vec<f64>>();\n    \
                  out\n}\n";
    assert_eq!(codes(source), [""; 0]);
}

#[test]
fn ch005_counts_every_truncating_cast_in_store() {
    let findings = scan_store(include_str!("../fixtures/ch005_trigger.rs"));
    let ch005 = findings.iter().filter(|f| f.rule == Rule::Ch005).count();
    assert_eq!(ch005, 2, "as u8 + as u32: {findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Ch005));
}

#[test]
fn ch005_quiet_on_try_from_and_widening_casts() {
    let findings = scan_store(include_str!("../fixtures/ch005_clean.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn ch005_is_store_only() {
    // The same casts outside the store crate are not canonical-bytes
    // hazards; no other rule may fire on them either.
    let findings = scan(include_str!("../fixtures/ch005_trigger.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn ch005_allow_suppresses_and_is_consumed() {
    let source = "pub fn f(n: usize) -> u8 {\n    \
                  n as u8 // charisma-verify: allow(CH005, length checked by caller)\n}\n";
    let findings = scan_store(source);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn ch006_fires_on_static_mut_unsafe_and_transmute() {
    let findings = scan(include_str!("../fixtures/ch006_trigger.rs"));
    let ch006 = findings.iter().filter(|f| f.rule == Rule::Ch006).count();
    assert_eq!(ch006, 3, "static mut + unsafe + transmute: {findings:#?}");
}

#[test]
fn ch006_quiet_on_safe_encoding() {
    assert_eq!(codes(include_str!("../fixtures/ch006_clean.rs")), [""; 0]);
}

#[test]
fn ch007_fires_on_unsanctioned_concurrency() {
    let findings = scan(include_str!("../fixtures/ch007_trigger.rs"));
    let ch007: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Ch007).collect();
    // use line: mpsc + Mutex + RwLock, body: Mutex::new + thread::spawn.
    assert_eq!(ch007.len(), 5, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Ch007));
}

#[test]
fn ch007_sanctions_the_thread_scope_claiming_pattern() {
    let findings = scan(include_str!("../fixtures/ch007_clean.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn ch007_exempts_the_obs_registry() {
    let rel = "crates/obs/src/fixture.rs";
    let findings = scan_source(
        rel,
        include_str!("../fixtures/ch007_trigger.rs"),
        scope_for(rel),
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::Ch007),
        "{findings:#?}"
    );
}

#[test]
fn ch008_fires_on_placeholder_panics_and_float_equality() {
    let findings = scan(include_str!("../fixtures/ch008_trigger.rs"));
    let ch008 = findings.iter().filter(|f| f.rule == Rule::Ch008).count();
    assert_eq!(ch008, 3, "f64 == + todo! + unreachable!: {findings:#?}");
}

#[test]
fn ch008_quiet_on_zero_guards_and_tolerances() {
    assert_eq!(codes(include_str!("../fixtures/ch008_clean.rs")), [""; 0]);
}

#[test]
fn ch008_is_out_of_scope_for_workload() {
    let rel = "crates/workload/src/fixture.rs";
    let findings = scan_source(
        rel,
        include_str!("../fixtures/ch008_trigger.rs"),
        scope_for(rel),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn ch009_flags_stale_and_unknown_suppressions() {
    let findings = scan(include_str!("../fixtures/stale_suppression.rs"));
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Ch009));
    assert_eq!(findings[0].line, 3, "stale allow(CH001): {findings:#?}");
    assert!(findings[0].message.contains("stale suppression"));
    assert_eq!(findings[1].line, 6, "unknown CH999: {findings:#?}");
    assert!(findings[1].message.contains("unknown rule code"));
}

#[test]
fn ch009_stays_quiet_for_consumed_suppressions_and_test_code() {
    // The suppressed.rs allow is consumed (CH001 really fires there), and
    // directives inside #[cfg(test)] items are ignored entirely.
    let findings = scan(include_str!("../fixtures/suppressed.rs"));
    assert!(
        findings.iter().all(|f| f.rule != Rule::Ch009),
        "{findings:#?}"
    );
    let test_gated = "#[cfg(test)]\nmod tests {\n    \
                      // charisma-verify: allow(CH001, test-only note)\n    \
                      fn t() {}\n}\n";
    assert_eq!(codes(test_gated), [""; 0]);
}

#[test]
fn cfg_test_on_semicolon_items_scopes_only_that_item() {
    // Historical bug: the line-based scanner blanked from the gated `use`
    // through the *next* item's first brace, hiding library code from the
    // rules. The token-level item tracker ends the region at the `;`.
    let findings = scan(include_str!("../fixtures/cfg_test_scoping.rs"));
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Ch001);
    assert_eq!(findings[0].line, 16, "lib_code body: {findings:#?}");
}

#[test]
fn inline_allow_suppresses_only_its_line() {
    let source = include_str!("../fixtures/suppressed.rs");
    let findings = scan(source);
    // The import line is suppressed; the signature and body lines are not.
    assert!(
        findings.iter().all(|f| f.line != 3),
        "allow directive ignored: {findings:#?}"
    );
    assert_eq!(
        findings.iter().filter(|f| f.rule == Rule::Ch001).count(),
        2,
        "{findings:#?}"
    );
}

#[test]
fn non_simulation_paths_are_out_of_scope() {
    for rel in [
        "crates/core/src/analyze.rs",
        "crates/ipsc/tests/integration.rs",
        "crates/ipsc/benches/bench.rs",
        "tests/end_to_end.rs",
    ] {
        let findings = scan_source(
            rel,
            include_str!("../fixtures/ch001_trigger.rs"),
            scope_for(rel),
        );
        assert!(
            findings.is_empty(),
            "{rel} should be unscoped: {findings:#?}"
        );
    }
}

#[test]
fn workload_is_scoped_for_rng_unsafe_and_concurrency_rules_only() {
    let scope = scope_for("crates/workload/src/apps.rs");
    assert!(!scope.ch001 && !scope.ch002 && !scope.ch003 && scope.ch004);
    assert!(!scope.ch005 && scope.ch006 && scope.ch007 && !scope.ch008);
    assert!(scope.metrics);
}

#[test]
fn store_is_held_to_every_rule() {
    let scope = scope_for("crates/store/src/codec.rs");
    assert!(scope.ch001 && scope.ch002 && scope.ch003 && scope.ch004);
    assert!(scope.ch005 && scope.ch006 && scope.ch007 && scope.ch008);
    assert!(scope.metrics && scope.any_rule());
}

#[test]
fn obs_is_exempt_from_clock_and_concurrency_rules() {
    let scope = scope_for("crates/obs/src/metrics.rs");
    assert!(scope.ch001 && scope.ch003 && scope.ch008 && scope.metrics);
    assert!(!scope.ch004 && !scope.ch005 && !scope.ch007);
}

#[test]
fn metric_registrations_are_extracted_with_wildcards() {
    let source = "pub fn wire(registry: &MetricsRegistry, snapshot: &mut MetricsSnapshot) {\n    \
                  let c = registry.counter(\"cfs.read_requests\");\n    \
                  let d = registry.counter(&format!(\"cfs.requests.mode{m}\"));\n    \
                  snapshot.set_counter(\n        \
                  &format!(\"workload.shard{shard:02}.jobs\"),\n        1,\n    );\n}\n\
                  #[cfg(test)]\nmod tests {\n    \
                  fn t(r: &MetricsRegistry) { r.counter(\"test.only\"); }\n}\n";
    let (regs, findings) =
        charisma_verify::consistency::extract_metric_registrations("crates/cfs/src/x.rs", source);
    assert!(findings.is_empty(), "{findings:#?}");
    let patterns: Vec<&str> = regs.iter().map(|r| r.pattern.as_str()).collect();
    assert_eq!(
        patterns,
        [
            "cfs.read_requests",
            "cfs.requests.mode*",
            "workload.shard*.jobs"
        ]
    );
    assert!(!regs[0].wildcard && regs[1].wildcard && regs[2].wildcard);
}

#[test]
fn dynamic_metric_names_without_a_literal_are_flagged() {
    let source = "pub fn wire(r: &MetricsRegistry, name: &str) {\n    r.counter(name);\n}\n";
    let (regs, findings) =
        charisma_verify::consistency::extract_metric_registrations("crates/cfs/src/x.rs", source);
    assert!(regs.is_empty());
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::Ch010);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn metric_consistency_flags_drift_in_both_directions() {
    use charisma_verify::MetricReg;
    use std::collections::BTreeMap;
    let reg = |line: usize, pattern: &str, wildcard: bool| MetricReg {
        file: "crates/x/src/a.rs".to_string(),
        line,
        pattern: pattern.to_string(),
        wildcard,
    };
    let regs = vec![
        reg(1, "a.hits", false),
        reg(2, "a.mode*", true),
        reg(3, "gone.metric", false),
        reg(4, "cachesim.opt_in", false),
        reg(5, "faults.shard_retries", false),
    ];
    let mut fixture: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (name, line) in [("a.hits", 2), ("a.mode0", 3), ("orphan.metric", 4)] {
        fixture.insert(name.to_string(), ("fx.json".to_string(), line));
    }
    let findings = charisma_verify::check_metric_consistency(&regs, &fixture);
    // `gone.metric` (registered, unpinned) and `orphan.metric` (pinned,
    // unregistered); the optional cachesim.* / shard_retries names pass.
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Ch010));
    assert!(findings.iter().any(|f| f.message.contains("gone.metric")));
    assert!(findings.iter().any(|f| f.message.contains("orphan.metric")));
}

#[test]
fn the_real_snapshot_fixture_parses_to_metric_names() {
    let names =
        charisma_verify::fixture_metric_names(include_str!("../fixtures/metrics_snapshot.json"));
    let flat: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
    assert!(flat.contains(&"cfs.cache_hits"), "{flat:?}");
    assert!(flat.contains(&"engine.queue_depth_high_water"), "{flat:?}");
    assert!(flat.contains(&"machine.route_hops"), "{flat:?}");
    assert!(names.len() >= 30, "only {} names parsed", names.len());
}

#[test]
fn findings_render_as_machine_readable_json() {
    let findings = scan(include_str!("../fixtures/ch002_trigger.rs"));
    let json = findings_to_json(&findings);
    assert!(json.starts_with("[\n"));
    assert!(json.contains("\"rule\": \"CH002\""));
    assert!(json.contains("\"file\": \"crates/ipsc/src/fixture.rs\""));
    assert!(json.contains("\"line\": 3"));
    assert_eq!(findings_to_json(&[]), "[\n]\n");
}

#[test]
fn the_workspace_itself_is_clean() {
    // The repository must satisfy its own lint: this is the same check CI
    // runs via the binary, kept here so `cargo test` alone catches drift.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify has a workspace root")
        .to_path_buf();
    let findings =
        charisma_verify::lint_workspace(&charisma_verify::LintConfig::new(root)).expect("walk");
    assert!(findings.is_empty(), "{findings:#?}");
}
