//! The determinism harness must pass on the real pipeline and fail loudly
//! on injected nondeterminism.

use charisma_verify::determinism::{check_determinism, pipeline_record_stream};
use charisma_verify::{check_pipeline_determinism, check_shard_equivalence};

#[test]
fn seed_pipeline_is_deterministic() {
    let report = check_pipeline_determinism(4994, 0.02);
    assert!(report.is_deterministic(), "{:?}", report.divergence);
    assert!(report.records_checked > 1000, "suspiciously small trace");
}

#[test]
fn different_seeds_produce_different_streams() {
    let report = check_determinism(
        pipeline_record_stream(1, 0.02),
        pipeline_record_stream(2, 0.02),
    );
    assert!(
        !report.is_deterministic(),
        "seeds 1 and 2 produced identical traces"
    );
}

/// A record stream corrupted by ambient state — the failure mode CH004 and
/// this harness exist to catch. The counter survives across calls, so the
/// second "run" sees a different value than the first, exactly like an
/// unseeded RNG or leaked wall-clock timestamp would inject.
fn nondeterministic_stream() -> Vec<Vec<u8>> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static AMBIENT: AtomicU64 = AtomicU64::new(0);
    let run = AMBIENT.fetch_add(1, Ordering::Relaxed);
    let mut records = vec![vec![1, 2, 3], vec![4, 5, 6]];
    records.push(run.to_le_bytes().to_vec());
    records.push(vec![7, 8, 9]);
    records
}

#[test]
fn injected_nondeterminism_is_caught_and_localized() {
    let report = check_determinism(nondeterministic_stream(), nondeterministic_stream());
    let d = report.divergence.expect("divergence must be detected");
    assert_eq!(d.index, 2, "first two records agree");
    assert_eq!(report.records_checked, 2);
    assert_ne!(d.first, d.second);
}

#[test]
fn stream_length_mismatch_is_a_divergence() {
    let report = check_determinism(vec![vec![1u8], vec![2]], vec![vec![1u8], vec![2], vec![3]]);
    let d = report
        .divergence
        .expect("extra record must be a divergence");
    assert_eq!(d.index, 2);
    assert_eq!(d.first, "", "first stream ended");
    assert_eq!(d.second, "03");
}

#[test]
fn stream_hash_is_stable_across_runs() {
    let a = check_pipeline_determinism(77, 0.02);
    let b = check_pipeline_determinism(77, 0.02);
    assert_eq!(a.stream_hash, b.stream_hash);
    assert_eq!(a.records_checked, b.records_checked);
}

/// The sharded pipeline's core guarantee: worker count is invisible in the
/// output. Every layer of the record stream — per-shard raw traces, the
/// merged ordered stream, and the rendered analysis report — must be
/// byte-identical whether the shards run serially or on N threads.
#[test]
fn worker_count_does_not_change_any_layer() {
    for workers in [2, 8] {
        let report = check_shard_equivalence(4994, 0.02, workers);
        assert!(
            report.is_deterministic(),
            "serial vs {workers} workers diverged: {:?}",
            report.divergence
        );
        assert!(report.records_checked > 1000, "suspiciously small trace");
    }
}

/// The analysis report is part of the hashed stream, so nondeterministic
/// *analysis* (not just generation) would be caught. Different seeds must
/// still diverge — including in that final report record.
#[test]
fn sharded_streams_differ_across_seeds() {
    use charisma_verify::determinism::sharded_record_stream;
    let report = check_determinism(
        sharded_record_stream(1, 0.02, 2),
        sharded_record_stream(2, 0.02, 2),
    );
    assert!(!report.is_deterministic());
}
