//! The trace-archive gate as a test: the checked-in archive hash must
//! match what the current code produces at the seed and scale CI uses,
//! and the round-trip/pruning checks must hold.
//!
//! If this fails after an intentional format or encoding change,
//! regenerate with `cargo run -p charisma-verify -- archive --write` and
//! commit the fixture alongside the code — same review contract as the
//! metrics snapshot.

use charisma_verify::{archive_fixture_line, check_archive_gate};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/archive_hash.txt");

#[test]
fn fixture_matches_current_code() {
    let expected = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let actual = archive_fixture_line(4994, 0.05).expect("pipeline runs");
    assert_eq!(
        expected, actual,
        "archive hash fixture out of date — regenerate with: \
         cargo run -p charisma-verify -- archive --write"
    );
}

#[test]
fn gate_holds_at_ci_scale() {
    let report = check_archive_gate(4994, 0.05, 4).expect("pipeline runs");
    assert!(
        report.complaints.is_empty(),
        "archive gate violations: {:?}",
        report.complaints
    );
}
