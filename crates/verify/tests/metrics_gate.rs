//! The metrics-snapshot gate as a test: the checked-in fixture must match
//! what the current code produces, at the same seed and scale CI uses.
//!
//! If this fails after an intentional metrics change, regenerate with
//! `cargo run -p charisma-verify -- metrics --write` and commit the
//! fixture alongside the code — that is the review contract recorded in
//! ROADMAP.md.

use charisma_verify::{check_metrics_shard_equivalence, core_metrics_json, diff_json};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/fixtures/metrics_snapshot.json"
);

#[test]
fn fixture_matches_current_code() {
    let expected = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let actual = core_metrics_json(4994, 0.05, 1).expect("pipeline runs");
    let diffs = diff_json(&expected, &actual);
    assert!(
        diffs.is_empty(),
        "metrics fixture out of date: {} line(s) differ (first: {})\n\
         regenerate with: cargo run -p charisma-verify -- metrics --write",
        diffs.len(),
        diffs[0]
    );
}

#[test]
fn sharded_metrics_merge_to_serial_values() {
    let diffs = check_metrics_shard_equivalence(4994, 0.02, 4).expect("pipeline runs");
    assert!(
        diffs.is_empty(),
        "worker count leaked into the metrics core (first: {})",
        diffs[0]
    );
}
