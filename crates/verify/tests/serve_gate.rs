//! The archive-service gate as a test, at the seed/scale/tenant-count CI
//! uses: catalogs must be byte-identical under every (ingest workers ×
//! interleave seed) schedule, mid-ingest snapshots must replay exactly
//! their pinned prefix, federated scans must match the
//! concat-and-stable-sort oracle, and the pipeline's serve sink must
//! publish the same bytes as its memory sink.

use charisma_verify::check_serve_gate;

#[test]
fn gate_holds_at_ci_scale() {
    let report = check_serve_gate(4994, 0.05, 4).expect("pipeline runs");
    assert!(
        report.complaints.is_empty(),
        "serve gate violations: {:?}",
        report.complaints
    );
    assert_eq!(report.tenants, 4);
    assert_eq!(report.catalog_hashes.len(), 4);
    assert!(report.rows > 10_000);
}
