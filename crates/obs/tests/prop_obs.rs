//! Property tests for the observability substrate: histogram bucketing
//! over the full u64 range, snapshot merge algebra (associativity,
//! commutativity, identity) across arbitrary shard partitions, and JSON
//! export stability under insertion order.

use charisma_obs::{
    bucket_floor, bucket_index, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// A snapshot built from arbitrary counter/gauge/histogram updates.
fn snapshot_from(updates: &[(u8, u8, u64)]) -> MetricsSnapshot {
    let registry = MetricsRegistry::new();
    for &(kind, which, value) in updates {
        let name = format!("metric.{}", which % 5);
        match kind % 3 {
            0 => registry.counter(&name).add(value),
            1 => registry.gauge(&name).record_max(value),
            _ => registry.histogram(&name).record(value),
        }
    }
    registry.snapshot()
}

proptest! {
    /// Every u64 lands in exactly the bucket whose [floor, next-floor)
    /// range contains it; bucket 0 holds exactly zero.
    #[test]
    fn bucket_index_matches_floor_ranges(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_floor(idx) <= v);
        if idx + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < bucket_floor(idx + 1));
        }
        prop_assert_eq!(idx == 0, v == 0);
    }

    /// Recording values one at a time and in bulk (`record_n`) produce
    /// the same snapshot, for any multiplicity.
    #[test]
    fn record_n_equals_repeated_record(v in any::<u64>(), n in 0u64..50) {
        let bulk = Histogram::new();
        bulk.record_n(v, n);
        let repeated = Histogram::new();
        for _ in 0..n {
            repeated.record(v);
        }
        prop_assert_eq!(bulk.snapshot(), repeated.snapshot());
    }

    /// Merging per-shard snapshots is associative and commutative, and
    /// merging the empty snapshot changes nothing — the algebra that makes
    /// sharded metrics independent of worker scheduling.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..20),
        b in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..20),
        c in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..20),
    ) {
        let (sa, sb, sc) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);

        // a ⊕ ∅ == a
        let mut with_empty = sa.clone();
        with_empty.merge(&MetricsSnapshot::new());
        prop_assert_eq!(with_empty, sa);
    }

    /// Splitting one update stream across shards and merging the shard
    /// snapshots reproduces the serial snapshot, for any partition.
    #[test]
    fn sharded_updates_merge_to_serial(
        updates in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u64..1_000_000), 0..60),
        shards in 1usize..6,
    ) {
        let serial = snapshot_from(&updates);
        let mut parts: Vec<Vec<(u8, u8, u64)>> = vec![Vec::new(); shards];
        for (i, u) in updates.iter().enumerate() {
            parts[i % shards].push(*u);
        }
        let mut merged = MetricsSnapshot::new();
        for part in &parts {
            merged.merge(&snapshot_from(part));
        }
        prop_assert_eq!(merged, serial);
    }

    /// JSON export depends only on snapshot *content*: shuffling the
    /// update order (which permutes map insertion order) never changes a
    /// byte of the output.
    #[test]
    fn json_export_is_insertion_order_independent(
        updates in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u64>()), 1..30),
        rotate_by in 0usize..30,
    ) {
        let mut rotated = updates.clone();
        let k = rotate_by % rotated.len();
        rotated.rotate_left(k);
        let a = snapshot_from(&updates);
        let b = snapshot_from(&rotated);
        prop_assert_eq!(a.to_core_json(), b.to_core_json());
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    /// Histogram merge conserves sample counts (saturating), with buckets
    /// partitioning the total.
    #[test]
    fn histogram_merge_conserves_counts(
        xs in proptest::collection::vec(any::<u64>(), 0..40),
        ys in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let hx = Histogram::new();
        for &v in &xs {
            hx.record(v);
        }
        let hy = Histogram::new();
        for &v in &ys {
            hy.record(v);
        }
        let mut merged: HistogramSnapshot = hx.snapshot();
        merged.merge(&hy.snapshot());
        prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);
        prop_assert_eq!(merged.buckets.values().sum::<u64>(), merged.count);
    }
}
