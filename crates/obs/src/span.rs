//! Wall-clock span timing.
//!
//! A [`Span`] is an RAII guard: entering notifies the registry's probe,
//! dropping records the elapsed wall-clock time into the registry's
//! timing table (which the JSON export quarantines under
//! `"nondeterministic"` — see [`crate::snapshot`]).

use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// RAII timing guard returned by [`MetricsRegistry::span`]. Records its
/// elapsed wall-clock time (and notifies the probe) when dropped.
#[derive(Debug)]
pub struct Span<'r> {
    registry: &'r MetricsRegistry,
    name: &'static str,
    started: Instant,
}

impl<'r> Span<'r> {
    /// Open a span. Prefer [`MetricsRegistry::span`] or the [`span!`]
    /// macro.
    ///
    /// [`span!`]: crate::span!
    pub fn enter(registry: &'r MetricsRegistry, name: &'static str) -> Self {
        registry.probe().span_enter(name);
        Span {
            registry,
            name,
            started: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.registry.record_timing(self.name, nanos);
        self.registry.probe().span_exit(self.name, nanos);
    }
}

/// Time the rest of the enclosing scope under `name`:
///
/// ```
/// use charisma_obs::{span, MetricsRegistry};
///
/// let registry = MetricsRegistry::new();
/// {
///     span!(registry, "generate");
///     // ... work ...
/// }
/// assert_eq!(registry.snapshot().timings["generate"].count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:literal) => {
        let _span_guard = $registry.span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = MetricsRegistry::new();
        {
            let span = registry.span("work");
            assert_eq!(span.name(), "work");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.timings["work"].count, 1);
    }

    #[test]
    fn nested_spans_record_independently() {
        let registry = MetricsRegistry::new();
        {
            span!(registry, "outer");
            {
                span!(registry, "inner");
            }
        }
        let snap = registry.snapshot();
        assert_eq!(snap.timings["outer"].count, 1);
        assert_eq!(snap.timings["inner"].count, 1);
    }

    #[test]
    fn repeated_spans_accumulate() {
        let registry = MetricsRegistry::new();
        for _ in 0..3 {
            span!(registry, "loop");
        }
        assert_eq!(registry.snapshot().timings["loop"].count, 3);
    }
}
