//! `charisma-obs` — the deterministic observability substrate of the
//! CHARISMA reproduction.
//!
//! The paper's whole contribution was instrumentation: tracing every CFS
//! request on a production machine without perturbing it. This crate turns
//! that philosophy on the simulator itself, so the pipeline's internals —
//! event queue, CFS, caches, shard merge — are observable while a run is
//! in flight, without compromising the property the repository is built
//! on: **same seed, same bytes**.
//!
//! Three ideas organize the design:
//!
//! 1. **Deterministic core.** Counters, gauges, and histograms record
//!    facts of the *simulation* (requests served, queue depth high-water,
//!    disk service times in simulated microseconds). Their values are a
//!    pure function of the seed, so a [`MetricsSnapshot`]'s core can be
//!    diffed byte-for-byte against a committed fixture — that is the
//!    `charisma-verify metrics` gate.
//! 2. **Segregated nondeterminism.** Span timings measure *wall-clock*
//!    phases ([`MetricsRegistry::span`], the [`span!`] macro). They are
//!    useful for profiling but vary run to run, so the JSON export
//!    quarantines them under a `"nondeterministic"` key and
//!    [`MetricsSnapshot::to_core_json`] omits them entirely.
//! 3. **Near-zero cost.** Metric handles are `Arc`-shared atomic cells:
//!    registration takes a lock once, per-event updates are single relaxed
//!    atomic operations on pre-looked-up handles. Profiling hooks go
//!    through the [`Probe`] trait, whose default [`NoopProbe`] inlines to
//!    nothing.
//!
//! The crate is dependency-free by design (see `ROADMAP.md`: extend shims,
//! never add registry dependencies).
//!
//! ```
//! use charisma_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let served = registry.counter("cfs.requests");
//! let depth = registry.gauge("engine.queue_depth_high_water");
//! let service = registry.histogram("cfs.disk_service_us");
//!
//! served.inc();
//! depth.record_max(17);
//! service.record(19_500);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["cfs.requests"], 1);
//! assert!(snapshot.to_core_json().contains("cfs.disk_service_us"));
//! ```

pub mod metrics;
pub mod probe;
pub mod snapshot;
pub mod span;

pub use metrics::{
    bucket_floor, bucket_index, Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use probe::{NoopProbe, Probe};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, TimingSnapshot};
pub use span::Span;
