//! Frozen metric state: plain data, deterministic merge, JSON export.
//!
//! A [`MetricsSnapshot`] is what crosses shard boundaries and lands in
//! fixtures. Merging is associative and commutative (counters saturating
//! sum, gauges max, histograms bucket-wise sum), so the merged snapshot of
//! a sharded run is independent of worker scheduling. The JSON export is
//! BTreeMap-ordered and hand-rolled (no serde in an offline workspace);
//! [`MetricsSnapshot::to_core_json`] emits only the deterministic core,
//! while [`MetricsSnapshot::to_json`] appends wall-clock timings and rates
//! under a `"nondeterministic"` key.

use std::collections::BTreeMap;

use crate::metrics::bucket_floor;

/// A histogram frozen into plain data. `buckets` is sparse: only occupied
/// buckets appear, keyed by bucket index (see
/// [`bucket_index`](crate::bucket_index)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Occupied buckets: index → sample count.
    pub buckets: BTreeMap<u32, u64>,
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (bucket-wise saturating sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &n) in &other.buckets {
            let cell = self.buckets.entry(idx).or_insert(0);
            *cell = cell.saturating_add(n);
        }
    }
}

/// One span's accumulated wall-clock time. Nondeterministic by nature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds across all entries.
    pub total_ns: u64,
}

/// Every metric a registry knew at snapshot time.
///
/// `counters`, `gauges`, and `histograms` are the deterministic core: pure
/// functions of the simulation seed. `timings` and `rates` are wall-clock
/// derived and excluded from [`to_core_json`](Self::to_core_json).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counts, merged by saturating sum.
    pub counters: BTreeMap<String, u64>,
    /// High-water marks, merged by max.
    pub gauges: BTreeMap<String, u64>,
    /// Log2 histograms, merged bucket-wise.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock span timings (nondeterministic).
    pub timings: BTreeMap<String, TimingSnapshot>,
    /// Derived wall-clock rates, e.g. records per second
    /// (nondeterministic).
    pub rates: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// An empty snapshot (identity element of [`merge`](Self::merge)).
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Fold `other` into `self`. Counters add (saturating), gauges take
    /// the max, histograms add bucket-wise, timings add, rates take the
    /// max. Every rule is associative and commutative, so any merge order
    /// over any partition of the same updates yields the same snapshot.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            let cell = self.counters.entry(k.clone()).or_insert(0);
            *cell = cell.saturating_add(v);
        }
        for (k, &v) in &other.gauges {
            let cell = self.gauges.entry(k.clone()).or_insert(0);
            *cell = (*cell).max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, t) in &other.timings {
            let cell = self.timings.entry(k.clone()).or_default();
            cell.count = cell.count.saturating_add(t.count);
            cell.total_ns = cell.total_ns.saturating_add(t.total_ns);
        }
        for (k, &v) in &other.rates {
            let cell = self.rates.entry(k.clone()).or_insert(0);
            *cell = (*cell).max(v);
        }
    }

    /// Set a counter directly (used when importing pre-counted results,
    /// e.g. cachesim summaries, into a snapshot).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Set a derived rate (nondeterministic section).
    pub fn set_rate(&mut self, name: &str, value: u64) {
        self.rates.insert(name.to_owned(), value);
    }

    /// True when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.timings.is_empty()
            && self.rates.is_empty()
    }

    /// The deterministic core as pretty JSON: counters, gauges,
    /// histograms — byte-identical for byte-identical simulations, which
    /// is what the `charisma-verify metrics` fixture diff relies on.
    pub fn to_core_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        self.write_core(&mut w);
        w.close_object();
        w.finish()
    }

    /// The full snapshot as pretty JSON. Deterministic core first, then
    /// wall-clock data under `"nondeterministic"` so consumers can hash
    /// everything above that key.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        self.write_core(&mut w);
        w.key("nondeterministic");
        w.open_object();
        w.key("timings");
        w.open_object();
        for (name, t) in &self.timings {
            w.key(name);
            w.open_object();
            w.field_u64("count", t.count);
            w.field_u64("total_ns", t.total_ns);
            w.close_object();
        }
        w.close_object();
        w.key("rates");
        w.open_object();
        for (name, &v) in &self.rates {
            w.field_u64(name, v);
        }
        w.close_object();
        w.close_object();
        w.close_object();
        w.finish()
    }

    fn write_core(&self, w: &mut JsonWriter) {
        w.key("counters");
        w.open_object();
        for (name, &v) in &self.counters {
            w.field_u64(name, v);
        }
        w.close_object();
        w.key("gauges");
        w.open_object();
        for (name, &v) in &self.gauges {
            w.field_u64(name, v);
        }
        w.close_object();
        w.key("histograms");
        w.open_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.open_object();
            w.field_u64("count", h.count);
            w.field_u64("sum", h.sum);
            w.key("buckets");
            w.open_object();
            for (&idx, &n) in &h.buckets {
                // Key buckets by their floor value, not their index: the
                // fixture then reads as "512": 3 (three samples in
                // [512, 1024)) instead of an opaque bucket number.
                w.field_u64(&bucket_floor(idx as usize).to_string(), n);
            }
            w.close_object();
            w.close_object();
        }
        w.close_object();
    }
}

/// Minimal pretty-printing JSON writer. Two-space indent, keys emitted in
/// caller order (callers iterate BTreeMaps, so output order is the sorted
/// key order), strings escaped per RFC 8259.
struct JsonWriter {
    out: String,
    indent: usize,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            need_comma: Vec::new(),
        }
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
            self.newline();
        }
    }

    fn open_object(&mut self) {
        self.out.push('{');
        self.indent += 1;
        self.need_comma.push(false);
    }

    fn close_object(&mut self) {
        self.indent -= 1;
        let had_entries = self.need_comma.pop().unwrap_or(false);
        if had_entries {
            self.newline();
        }
        self.out.push('}');
    }

    fn key(&mut self, key: &str) {
        self.pre_value();
        self.push_string(key);
        self.out.push_str(": ");
    }

    fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.counters.insert("a.requests".into(), 10);
        s.counters.insert("b.hits".into(), 3);
        s.gauges.insert("depth".into(), 7);
        let h = HistogramSnapshot {
            count: 2,
            sum: 1024,
            buckets: [(10u32, 2u64)].into_iter().collect(),
        };
        s.histograms.insert("service_us".into(), h);
        s.timings.insert(
            "generate".into(),
            TimingSnapshot {
                count: 1,
                total_ns: 5000,
            },
        );
        s.rates.insert("records_per_sec".into(), 123);
        s
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = sample();
        let mut b = MetricsSnapshot::new();
        b.counters.insert("a.requests".into(), 5);
        b.gauges.insert("depth".into(), 9);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["a.requests"], 15);
        assert_eq!(ab.gauges["depth"], 9);
        a.merge(&MetricsSnapshot::new());
        assert_eq!(a, sample(), "empty snapshot is the merge identity");
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = HistogramSnapshot {
            count: 2,
            sum: 6,
            buckets: [(1u32, 1u64), (2, 1)].into_iter().collect(),
        };
        let b = HistogramSnapshot {
            count: 3,
            sum: 100,
            buckets: [(2u32, 2u64), (6, 1)].into_iter().collect(),
        };
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 106);
        assert_eq!(a.buckets[&1], 1);
        assert_eq!(a.buckets[&2], 3);
        assert_eq!(a.buckets[&6], 1);
    }

    #[test]
    fn core_json_omits_wall_clock_data() {
        let s = sample();
        let core = s.to_core_json();
        assert!(core.contains("a.requests"));
        assert!(core.contains("service_us"));
        assert!(!core.contains("nondeterministic"));
        assert!(!core.contains("generate"));
        assert!(!core.contains("records_per_sec"));
    }

    #[test]
    fn full_json_quarantines_wall_clock_data() {
        let s = sample();
        let full = s.to_json();
        let nd_at = full.find("\"nondeterministic\"").expect("nd key present");
        let timing_at = full.find("\"generate\"").expect("timing present");
        let rate_at = full.find("\"records_per_sec\"").expect("rate present");
        assert!(timing_at > nd_at && rate_at > nd_at);
        // Everything before the nondeterministic key equals the core,
        // minus the closing brace: the deterministic prefix is hashable.
        assert!(full.starts_with(s.to_core_json().trim_end_matches("\n}\n")));
    }

    #[test]
    fn json_is_stable_across_insertion_order() {
        let mut fwd = MetricsSnapshot::new();
        fwd.counters.insert("alpha".into(), 1);
        fwd.counters.insert("beta".into(), 2);
        let mut rev = MetricsSnapshot::new();
        rev.counters.insert("beta".into(), 2);
        rev.counters.insert("alpha".into(), 1);
        assert_eq!(fwd.to_json(), rev.to_json());
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = MetricsSnapshot::new();
        s.counters.insert("weird\"\\name\n".into(), 1);
        let json = s.to_json();
        assert!(json.contains("weird\\\"\\\\name\\n"));
    }

    #[test]
    fn bucket_keys_are_floor_values() {
        let mut s = MetricsSnapshot::new();
        let h = HistogramSnapshot {
            count: 1,
            sum: 1000,
            buckets: [(10u32, 1u64)].into_iter().collect(),
        };
        s.histograms.insert("svc".into(), h);
        assert!(s.to_core_json().contains("\"512\": 1"));
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let s = MetricsSnapshot::new();
        let core = s.to_core_json();
        assert!(core.contains("\"counters\": {}"));
        assert!(core.ends_with("}\n"));
    }
}
