//! Profiling hooks.
//!
//! A [`Probe`] receives span enter/exit notifications from a
//! [`MetricsRegistry`](crate::MetricsRegistry). The default [`NoopProbe`]
//! has empty bodies, so instrumented code pays only a virtual call that
//! the optimizer can devirtualize and drop; a real profiler (flamegraph
//! feeder, tracing bridge, stderr logger) implements the trait and is
//! attached with [`MetricsRegistry::with_probe`](crate::MetricsRegistry::with_probe).

/// Observer for span lifecycle events.
///
/// Both methods default to doing nothing, so implementations override
/// only what they need. Implementations must be `Send + Sync`: shard
/// worker threads may report spans concurrently.
pub trait Probe: Send + Sync {
    /// A span named `name` was opened.
    fn span_enter(&self, name: &'static str) {
        let _ = name;
    }

    /// The span named `name` closed after `elapsed_ns` wall-clock
    /// nanoseconds.
    fn span_exit(&self, name: &'static str, elapsed_ns: u64) {
        let _ = (name, elapsed_ns);
    }
}

/// The default probe: ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct CountingProbe {
        enters: AtomicU64,
        exits: AtomicU64,
        last_elapsed: AtomicU64,
    }

    impl Probe for CountingProbe {
        fn span_enter(&self, _name: &'static str) {
            self.enters.fetch_add(1, Ordering::Relaxed);
        }
        fn span_exit(&self, _name: &'static str, elapsed_ns: u64) {
            self.exits.fetch_add(1, Ordering::Relaxed);
            self.last_elapsed.store(elapsed_ns, Ordering::Relaxed);
        }
    }

    #[test]
    fn custom_probe_sees_span_lifecycle() {
        let probe = Arc::new(CountingProbe {
            enters: AtomicU64::new(0),
            exits: AtomicU64::new(0),
            last_elapsed: AtomicU64::new(0),
        });
        let registry = crate::MetricsRegistry::with_probe(probe.clone());
        {
            let _span = registry.span("unit");
        }
        assert_eq!(probe.enters.load(Ordering::Relaxed), 1);
        assert_eq!(probe.exits.load(Ordering::Relaxed), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.timings["unit"].count, 1);
    }

    #[test]
    fn noop_probe_is_inert() {
        let registry = crate::MetricsRegistry::new();
        {
            let _span = registry.span("quiet");
        }
        assert_eq!(registry.snapshot().timings["quiet"].count, 1);
    }
}
