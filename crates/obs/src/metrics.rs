//! The metric primitives and the registry that names them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared atomic
//! cells: the registry keeps one canonical handle per name, and every
//! clone updates the same storage. Hot paths therefore pay one relaxed
//! atomic op per update — no lock, no string lookup — while the registry
//! can snapshot every metric at any time through its own clones.
//!
//! All updates use saturating arithmetic so a metric can never wrap: a
//! counter stuck at `u64::MAX` is a visible anomaly, a counter that wrapped
//! past zero is a silent lie.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::probe::{NoopProbe, Probe};
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, TimingSnapshot};
use crate::span::Span;

/// Add `v` to an atomic cell, saturating at `u64::MAX`.
fn saturating_add(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing count. Merges across shards by (saturating)
/// sum.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero (tests, placeholders).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Count one occurrence.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` occurrences.
    #[inline]
    pub fn add(&self, n: u64) {
        saturating_add(&self.0, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A high-water gauge: retains the maximum value ever recorded. Merges
/// across shards by max, which keeps sharded runs deterministic (max is
/// commutative and associative, unlike "last write wins").
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Raise the gauge to `v` if `v` exceeds the current value.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current (maximum observed) value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// (`1 + ilog2(u64::MAX) + 1 = 65`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: bucket 0 holds exactly the value 0;
/// bucket `i >= 1` holds `[2^(i-1), 2^i)`. `u64::MAX` lands in bucket 64.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        _ => 1 + v.ilog2() as usize,
    }
}

/// The smallest value belonging to bucket `i` (the inverse of
/// [`bucket_index`] on bucket boundaries).
pub fn bucket_floor(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples. Merges across shards by
/// bucket-wise (saturating) sum.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples (bulk import of pre-counted data).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        saturating_add(&self.0.buckets[bucket_index(v)], n);
        saturating_add(&self.0.count, n);
        saturating_add(&self.0.sum, v.saturating_mul(n));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Freeze the current state into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = BTreeMap::new();
        for (i, b) in self.0.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                buckets.insert(i as u32, v);
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Metric state is plain atomics/maps: a panic elsewhere cannot leave it
    // logically inconsistent, so recover from poisoning instead of
    // propagating it.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The registry: names metrics, hands out shared handles, snapshots.
///
/// One registry per simulation domain — the sharded generator runs one per
/// shard and merges the snapshots, which is what keeps the merged metrics
/// independent of worker count.
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    /// Wall-clock span accumulators: name → (entries, total nanoseconds).
    timings: Mutex<BTreeMap<String, (u64, u64)>>,
    probe: Arc<dyn Probe>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with the no-op probe.
    pub fn new() -> Self {
        Self::with_probe(Arc::new(NoopProbe))
    }

    /// An empty registry whose spans report to `probe`.
    pub fn with_probe(probe: Arc<dyn Probe>) -> Self {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            timings: Mutex::new(BTreeMap::new()),
            probe,
        }
    }

    /// The registered counter named `name`, creating it at zero on first
    /// use. The returned handle shares storage with every other handle of
    /// the same name from this registry.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                map.insert(name.to_owned(), c.clone());
                c
            }
        }
    }

    /// The registered high-water gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::default();
                map.insert(name.to_owned(), g.clone());
                g
            }
        }
    }

    /// The registered histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.histograms);
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::default();
                map.insert(name.to_owned(), h.clone());
                h
            }
        }
    }

    /// Open a wall-clock span; its elapsed time is recorded (and reported
    /// to the probe) when the returned guard drops. Prefer the [`span!`]
    /// macro, which binds the guard for you.
    ///
    /// [`span!`]: crate::span!
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span::enter(self, name)
    }

    /// The probe spans report to.
    pub fn probe(&self) -> &Arc<dyn Probe> {
        &self.probe
    }

    /// Accumulate `nanos` of wall-clock time under the span name `name`.
    /// Called by [`Span`] on drop; public so external timers can feed the
    /// same accounting.
    pub fn record_timing(&self, name: &str, nanos: u64) {
        let mut map = lock(&self.timings);
        let cell = map.entry(name.to_owned()).or_insert((0, 0));
        cell.0 = cell.0.saturating_add(1);
        cell.1 = cell.1.saturating_add(nanos);
    }

    /// Freeze every registered metric into plain, mergeable data.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let timings = lock(&self.timings)
            .iter()
            .map(|(k, &(count, total_ns))| (k.clone(), TimingSnapshot { count, total_ns }))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            timings,
            rates: BTreeMap::new(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &lock(&self.counters).len())
            .field("gauges", &lock(&self.gauges).len())
            .field("histograms", &lock(&self.histograms).len())
            .field("timings", &lock(&self.timings).len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_storage() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("x").get(), 5);
        assert_eq!(r.snapshot().counters["x"], 5);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_keeps_high_water() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        g.record_max(10);
        g.record_max(3);
        g.record_max(12);
        g.record_max(5);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_floor_inverts_index_on_boundaries() {
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i);
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1000);
        h.record_n(u64::MAX, 2);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, u64::MAX, "sum saturates");
        assert_eq!(s.buckets[&0], 1);
        assert_eq!(s.buckets[&1], 1);
        assert_eq!(s.buckets[&10], 1, "1000 is in [512, 1024)");
        assert_eq!(s.buckets[&64], 2);
    }

    #[test]
    fn record_n_zero_is_a_noop() {
        let h = Histogram::new();
        h.record_n(42, 0);
        assert_eq!(h.count(), 0);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn timings_accumulate() {
        let r = MetricsRegistry::new();
        r.record_timing("phase", 100);
        r.record_timing("phase", 50);
        let s = r.snapshot();
        assert_eq!(s.timings["phase"].count, 2);
        assert_eq!(s.timings["phase"].total_ns, 150);
    }

    #[test]
    fn handles_are_usable_across_threads() {
        let r = MetricsRegistry::new();
        let c = r.counter("shared");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
