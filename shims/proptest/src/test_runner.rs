//! Deterministic per-test RNG and the case-failure type.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a single generated case failed; mirrors upstream's
/// `proptest::test_runner::TestCaseError` (minus shrinking machinery).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Upstream also lets a case reject its inputs; without shrinking we
    /// treat rejection like failure so bad strategies surface loudly.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// RNG handed to strategies by the [`proptest!`](crate::proptest) harness.
///
/// Seeded from an FNV-1a hash of the test name: every test gets an
/// independent, reproducible stream.
pub struct TestRng(StdRng);

impl TestRng {
    /// Build the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}
