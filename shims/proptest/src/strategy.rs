//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): well-formed (no NaN/inf) and sufficient for the
        // workspace's properties.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for any value of `T`; built by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);
