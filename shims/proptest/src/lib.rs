//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements the
//! subset of proptest the workspace's property tests use: the [`proptest!`]
//! macro, `any::<T>()`, range strategies, tuple strategies, `prop_map`,
//! `prop_oneof!`, `Just`, `collection::vec`, and `option::of`.
//!
//! Differences from upstream, deliberate and documented:
//! - **No shrinking.** A failing case is not minimized; because the runner
//!   is deterministic, rerunning the test reproduces the same failure.
//! - **Deterministic by construction.** Each test's RNG is seeded from a
//!   hash of the test's name, so failures reproduce exactly across runs —
//!   there is no `PROPTEST_` environment handling.
//! - `prop_assert*` are plain `assert*` — a failure panics immediately.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Number of generated cases per property.
pub const CASES: u32 = 64;

/// Assert a condition inside a property; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniformly choose among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Each function body runs [`CASES`] times with
/// freshly generated inputs from the declared strategies.
///
/// As in upstream proptest, the body may `return Ok(())` early or
/// `return Err(TestCaseError::fail(..))` to reject a case; a falling-off
/// end of the body is treated as success.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::CASES {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    let __result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!("proptest case {} of {}: {e}", __case + 1, stringify!($name));
                    }
                }
            }
        )*
    };
}
