//! `Option<T>` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<T>`; built by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// Yield `None` about a quarter of the time, otherwise `Some` of a value
/// from `inner` — the same shape (and default weighting) as upstream
/// proptest's `option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
