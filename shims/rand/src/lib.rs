//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the rand 0.8 API it actually uses.
//! `StdRng` here is xoshiro256++ seeded through SplitMix64: deterministic,
//! portable, and plenty good statistically for workload synthesis. It does
//! **not** produce the same streams as upstream `rand` — nothing in the
//! workspace depends on upstream's exact values, only on determinism, which
//! `charisma-verify determinism` enforces end to end.
//!
//! Deliberately absent: `thread_rng` and `from_entropy`. Every generator in
//! the simulation must be seeded explicitly (lint rule `CH004`), so the shim
//! simply does not offer ambient-entropy constructors.

pub mod rngs;
pub mod seq;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce from uniform bits.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`. Generic over the produced type so
/// the compiler infers untyped integer literals from the expected output,
/// matching upstream `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::from_rng(self) < p
    }

    /// Uniform draw of a whole value.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&f));
            let i = rng.gen_range(-80.0..=80.0);
            assert!((-80.0..=80.0).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
