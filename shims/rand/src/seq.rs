//! Sequence helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1u32, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
