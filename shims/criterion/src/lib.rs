//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's `cargo bench` targets compiling and running without
//! crates.io access. Each `Bencher::iter` call times a small fixed number of
//! iterations with `std::time::Instant` and prints a one-line report — no
//! statistics, no HTML, no CLI filtering. Good enough to smoke-test the
//! bench targets; not a measurement tool.

use std::time::Instant;

/// How work is scaled when reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a single benchmark body.
pub struct Bencher {
    iters: u32,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Run and time `f`, retaining mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then the timed iterations.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("bench {name:50} {:>14.0} ns/iter{rate}", ns_per_iter);
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 3,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        report(name, b.last_ns_per_iter, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group; settings apply to the benches run inside it.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistical sample count; the shim times a fixed
    /// number of iterations, so this is a no-op kept for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream bounds wall-clock measurement time; no-op here.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Report throughput alongside time for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 3,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.last_ns_per_iter,
            self.throughput,
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Opaque hint to the optimizer; re-exported for upstream API parity.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 4, "warm-up + timed iterations");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(100));
        let mut hits = 0u32;
        g.bench_function("inner", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }
}
