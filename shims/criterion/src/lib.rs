//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's `cargo bench` targets compiling and running without
//! crates.io access. Each `Bencher::iter` call times a small fixed number of
//! iterations with `std::time::Instant` and prints a one-line report — no
//! statistics, no HTML, no CLI filtering. Good enough to smoke-test the
//! bench targets; not a measurement tool.
//!
//! Like upstream criterion, passing `--test` to the bench binary (i.e.
//! `cargo bench -- --test`) switches to test mode: every benchmark body
//! runs exactly once, untimed, and reports `test <name> ... ok` — this is
//! what CI's bench-smoke job uses to prove the bench targets still run
//! without paying for timed iterations.

use std::time::Instant;

/// How work is scaled when reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a single benchmark body.
pub struct Bencher {
    iters: u32,
    test_mode: bool,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Run and time `f`, retaining mean ns/iteration. In test mode the
    /// body runs exactly once and nothing is timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // One warm-up, then the timed iterations.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("bench {name:50} {:>14.0} ns/iter{rate}", ns_per_iter);
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Sniff the binary's arguments for `--test`, like upstream's CLI.
    fn default() -> Self {
        Criterion::with_test_mode(std::env::args().any(|a| a == "--test"))
    }
}

impl Criterion {
    /// Build a driver with test mode set explicitly (upstream configures
    /// this from the CLI; the explicit form exists for the shim's tests).
    pub fn with_test_mode(test_mode: bool) -> Self {
        Criterion { test_mode }
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            iters: 3,
            test_mode: self.test_mode,
            last_ns_per_iter: 0.0,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        name: &str,
        f: &mut F,
        throughput: Option<Throughput>,
    ) {
        let mut b = self.bencher();
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            report(name, b.last_ns_per_iter, throughput);
        }
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group; settings apply to the benches run inside it.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistical sample count; the shim times a fixed
    /// number of iterations, so this is a no-op kept for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream bounds wall-clock measurement time; no-op here.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Report throughput alongside time for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.parent.run_one(&full, &mut f, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Opaque hint to the optimizer; re-exported for upstream API parity.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 4, "warm-up + timed iterations");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(100));
        let mut hits = 0u32;
        g.bench_function("inner", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }

    #[test]
    fn test_mode_runs_each_body_exactly_once() {
        let mut c = Criterion::with_test_mode(true);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1, "no warm-up, no timed loop");
        let mut g = c.benchmark_group("g");
        let mut grouped = 0u32;
        g.bench_function("inner", |b| b.iter(|| grouped += 1));
        g.finish();
        assert_eq!(grouped, 1);
    }
}
