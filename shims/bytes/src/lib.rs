//! Offline stand-in for the `bytes` crate.
//!
//! Provides exactly the [`Buf`] / [`BufMut`] surface the trace codec uses:
//! little-endian fixed-width reads on `&[u8]` and writes on `Vec<u8>`.
//! Semantics match upstream: reads past the end panic, so callers must check
//! [`Buf::remaining`] first (the codec does).

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consume and discard `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut buf = &data[..];
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let data = [1u8];
        let mut buf = &data[..];
        let _ = buf.get_u32_le();
    }
}
