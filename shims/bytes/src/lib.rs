//! Offline stand-in for the `bytes` crate.
//!
//! Provides exactly the [`Buf`] / [`BufMut`] surface the trace codec uses:
//! little-endian fixed-width reads on `&[u8]` and writes on `Vec<u8>`.
//! Semantics match upstream: reads past the end panic, so callers must check
//! [`Buf::remaining`] first (the codec does).
//!
//! **Charisma extensions** (not in upstream `bytes`): the columnar store
//! codec (`charisma-store`) needs LEB128 varints and *checked* reads that
//! report truncation instead of panicking, so this shim additionally
//! carries [`BufMut::put_varint_u64`] and the `try_get_*` family on
//! [`Buf`]. Per the ROADMAP, shims are extended in place rather than
//! pulling in registry crates.
//!
//! The shim also provides [`Bytes`]: an immutable, cheaply-cloneable byte
//! buffer with shared (`Arc`-backed) ownership and zero-copy
//! [`Bytes::slice`], matching the upstream type's core semantics. The
//! store's sealed-segment handles are built on it: any number of readers
//! can hold views into one archive allocation without copying a byte.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is O(1) (an `Arc` bump); [`Bytes::slice`] produces a new handle
/// onto the same allocation. Dereferences to `&[u8]`, so anything that
/// reads slices — including [`Buf`] on `&[u8]` — works on a view of it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer (no allocation is shared).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A new handle onto the sub-range `range` of this view, sharing the
    /// same allocation. Panics if the range is out of bounds or inverted,
    /// matching upstream and slice-indexing semantics.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds of {len}-byte Bytes"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consume and discard `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Checked [`Buf::copy_to_slice`]: `None` (consuming nothing) if fewer
    /// than `dst.len()` bytes remain.
    fn try_copy_to_slice(&mut self, dst: &mut [u8]) -> Option<()> {
        if self.remaining() < dst.len() {
            return None;
        }
        self.copy_to_slice(dst);
        Some(())
    }

    /// Checked [`Buf::get_u8`]: `None` on an empty buffer.
    fn try_get_u8(&mut self) -> Option<u8> {
        let mut b = [0u8; 1];
        self.try_copy_to_slice(&mut b)?;
        Some(b[0])
    }

    /// Checked [`Buf::get_u16_le`].
    fn try_get_u16_le(&mut self) -> Option<u16> {
        let mut b = [0u8; 2];
        self.try_copy_to_slice(&mut b)?;
        Some(u16::from_le_bytes(b))
    }

    /// Checked [`Buf::get_u32_le`].
    fn try_get_u32_le(&mut self) -> Option<u32> {
        let mut b = [0u8; 4];
        self.try_copy_to_slice(&mut b)?;
        Some(u32::from_le_bytes(b))
    }

    /// Checked [`Buf::get_u64_le`].
    fn try_get_u64_le(&mut self) -> Option<u64> {
        let mut b = [0u8; 8];
        self.try_copy_to_slice(&mut b)?;
        Some(u64::from_le_bytes(b))
    }

    /// Decode one LEB128 varint (the inverse of
    /// [`BufMut::put_varint_u64`]).
    ///
    /// `None` on truncation (the buffer ended mid-varint) or overflow (an
    /// encoding longer than 10 bytes / spilling past 64 bits). On `None`
    /// the cursor is left wherever the scan stopped — callers treating the
    /// buffer as corrupt should discard it.
    fn try_get_varint_u64(&mut self) -> Option<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.try_get_u8()?;
            let low = u64::from(byte & 0x7f);
            if shift >= 64 || (shift == 63 && low > 1) {
                return None;
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Some(value);
            }
            shift += 7;
        }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append `v` as an LEB128 varint: seven value bits per byte, low
    /// bits first, high bit of each byte marking continuation. At most 10
    /// bytes; values below 128 take one.
    fn put_varint_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.put_u8(byte);
                return;
            }
            self.put_u8(byte | 0x80);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_and_slice_share_one_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(std::ptr::eq(b.as_ref().as_ptr(), c.as_ref().as_ptr()));
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[3, 4, 5]);
        assert!(std::ptr::eq(mid.as_ref().as_ptr(), &b.as_ref()[2]));
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[4, 5]);
        let empty = b.slice(6..6);
        assert!(empty.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bytes_slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn bytes_reads_through_buf() {
        let b = Bytes::from(vec![7u8, 0, 0, 0]);
        let mut view: &[u8] = &b;
        assert_eq!(view.try_get_u32_le(), Some(7));
    }

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut buf = &data[..];
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let data = [1u8];
        let mut buf = &data[..];
        let _ = buf.get_u32_le();
    }

    #[test]
    fn checked_reads_report_truncation_without_consuming() {
        let data = [7u8, 8];
        let mut buf = &data[..];
        assert_eq!(buf.try_get_u32_le(), None);
        assert_eq!(buf.remaining(), 2, "failed checked read consumes nothing");
        assert_eq!(buf.try_get_u16_le(), Some(0x0807));
        assert_eq!(buf.try_get_u8(), None);
        assert_eq!(buf.try_get_u64_le(), None);
    }

    #[test]
    fn varint_round_trips_boundary_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut out: Vec<u8> = Vec::new();
        for &v in &values {
            out.put_varint_u64(v);
        }
        let mut buf = out.as_slice();
        for &v in &values {
            assert_eq!(buf.try_get_varint_u64(), Some(v));
        }
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn varint_sizes_are_minimal() {
        for (v, len) in [(0u64, 1usize), (127, 1), (128, 2), (u64::MAX, 10)] {
            let mut out: Vec<u8> = Vec::new();
            out.put_varint_u64(v);
            assert_eq!(out.len(), len, "value {v}");
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Truncated: continuation bit set, then the buffer ends.
        let mut buf: &[u8] = &[0x80];
        assert_eq!(buf.try_get_varint_u64(), None);
        // Overflow: 11 continuation bytes spill past 64 bits.
        let long = [0xff; 11];
        let mut buf = &long[..];
        assert_eq!(buf.try_get_varint_u64(), None);
        // Overflow in the 10th byte's high bits.
        let spill = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut buf = &spill[..];
        assert_eq!(buf.try_get_varint_u64(), None);
    }
}
