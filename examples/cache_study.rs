//! Cache-policy study: LRU vs FIFO vs the paper's proposed
//! interprocess-locality-aware policy.
//!
//! The paper's §5 recommends that "replacement policies other than LRU or
//! FIFO should be developed … to optimize for interprocess locality rather
//! than traditional spatial and temporal locality". `Policy::Ipl`
//! implements that idea (evict blocks whose bytes have been fully
//! consumed); this example measures all three on the same generated trace.
//!
//! ```text
//! cargo run --release --example cache_study
//! ```

use charisma::cachesim::{io_cache_sim, Policy, SessionIndex};
use charisma::prelude::*;

fn main() -> Result<(), charisma::Error> {
    println!("Generating trace (10% scale, 4 workers)...");
    let out = Pipeline::new().scale(0.10).seed(4994).shards(4).run()?;
    let events = out.events;
    let index = SessionIndex::build(&events);
    println!("  {} events\n", events.len());

    println!("I/O-node cache hit rate, 10 I/O nodes (requests fully satisfied):");
    println!(
        "  {:>8}  {:>7}  {:>7}  {:>7}",
        "buffers", "LRU", "FIFO", "IPL"
    );
    for buffers in [50usize, 100, 200, 400, 800, 1600] {
        let mut rates = Vec::new();
        for policy in [Policy::Lru, Policy::Fifo, Policy::Ipl] {
            let r = io_cache_sim(&events, &index, 10, buffers, policy);
            rates.push(r.hit_rate());
        }
        println!(
            "  {:>8}  {:>6.1}%  {:>6.1}%  {:>6.1}%",
            buffers,
            100.0 * rates[0],
            100.0 * rates[1],
            100.0 * rates[2]
        );
    }
    println!(
        "\nThe IPL policy frees buffers as soon as interleaved readers have\n\
         consumed them, which helps most when buffers are scarce — exactly\n\
         the regime the 4 MB I/O nodes of the iPSC/860 lived in."
    );

    // The compute-node side (Figure 8): one buffer is nearly as good as
    // fifty, because the workload has spatial, not temporal, locality.
    println!("\nCompute-node cache (read-only files, per-node buffers):");
    for buffers in [1usize, 10, 50] {
        let r = compute_cache_sim(&events, &index, buffers);
        println!(
            "  {:>2} buffer(s): overall {:>5.1}%, {:>4.1}% of jobs above 75%",
            buffers,
            100.0 * r.hit_rate(),
            100.0 * r.fraction_of_jobs_above(0.75)
        );
    }
    Ok(())
}
