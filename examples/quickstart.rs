//! Quick start: generate a scaled-down three-week workload, collect its
//! CHARISMA trace, and print the paper's full characterization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use charisma::prelude::*;

fn main() {
    // 5% of the paper's job population — a few seconds of work.
    let scale = 0.05;
    println!("Generating {scale}x of the NASA Ames workload...");
    let workload = generate(GeneratorConfig {
        scale,
        seed: 4994,
        ..Default::default()
    });
    println!(
        "  {} jobs ran, {} file sessions, {} I/O requests",
        workload.stats.jobs, workload.stats.sessions, workload.stats.requests
    );
    println!(
        "  trace buffering saved {:.1}% of collection messages (paper: >90%)",
        100.0 * workload.stats.message_reduction
    );

    // The paper's postprocessing: per-node clock-drift correction and a
    // chronological merge.
    let events = postprocess(&workload.trace);
    println!("  {} trace records rectified\n", events.len());

    // Every table and figure of the paper's section 4.
    let report = Report::from_events(&events);
    println!("{}", report.render());
}
