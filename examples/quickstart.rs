//! Quick start: run the whole study — a scaled-down three-week workload,
//! its CHARISMA trace, and the paper's full characterization — through the
//! `Pipeline` facade.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use charisma::prelude::*;

fn main() -> Result<(), charisma::Error> {
    // 5% of the paper's job population — a few seconds of work. The
    // workload generates on 4 worker threads; the output is bit-identical
    // to a serial run (`.shards(1)`), so thread count is purely a speed knob.
    let scale = 0.05;
    println!("Generating {scale}x of the NASA Ames workload on 4 workers...");
    let out = Pipeline::new().scale(scale).seed(4994).shards(4).run()?;

    let stats = out.stats();
    println!(
        "  {} jobs ran, {} file sessions, {} I/O requests",
        stats.jobs, stats.sessions, stats.requests
    );
    println!(
        "  trace buffering saved {:.1}% of collection messages (paper: >90%)",
        100.0 * stats.message_reduction
    );
    println!(
        "  {} trace records rectified and merged\n",
        out.events.len()
    );

    // Every table and figure of the paper's section 4.
    println!("{}", out.report.render());
    Ok(())
}
