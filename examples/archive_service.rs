//! The archive service: many sites publishing, many readers querying.
//!
//! The CHARISMA study watched one shared file system serve a whole
//! production mix. This example is the repo's "open archive" analog of
//! that situation — a long-lived multi-tenant `charisma-serve` service
//! where three simulated *sites* publish their trace campaigns and
//! readers query across all of them:
//!
//! * site 0 publishes straight from a pipeline run through
//!   `ArchiveSink::Serve` — the run is just another tenant;
//! * site 1 ingests its own campaign as explicit batch feeds;
//! * site 2 demonstrates snapshot isolation: a reader pins the catalog
//!   mid-ingest and keeps seeing exactly that prefix while ingest
//!   continues underneath it;
//! * finally one federated query fans out across all three catalogs and
//!   k-way merges the results back into a single `(time, node)`-ordered
//!   stream.
//!
//! ```text
//! cargo run --release --example archive_service
//! ```

use std::sync::Arc;

use charisma::prelude::*;
use charisma::serve::ServeMetrics;
use charisma::{ArchiveSink, ServeSink};

fn main() -> Result<(), charisma::Error> {
    // One long-lived service hosting three sites. Its (seed, scale)
    // stamps the published catalogs' metadata.
    let registry = MetricsRegistry::new();
    let mut service = Service::new(ServiceConfig {
        seed: 4994,
        scale: 0.02,
        tenants: 3,
        ..ServiceConfig::default()
    });
    service.attach_metrics(ServeMetrics::register(&registry));
    let service = Arc::new(service);

    // Site 0: a pipeline run delivers its merged stream through the
    // serve sink — same single merge pass that feeds the analysis.
    let out = Pipeline::new()
        .scale(0.02)
        .seed(4994)
        .shards(2)
        .sink(ArchiveSink::Serve(ServeSink::new(Arc::clone(&service), 0)))
        .run()?;
    println!(
        "site 0: pipeline published {} rows through the serve sink",
        out.events.len()
    );

    // Site 1: a different campaign, ingested as an explicit batch feed
    // on two workers (the published bytes are worker-invariant).
    let campaign1 = Pipeline::new().scale(0.01).seed(271).run()?;
    let feed = TenantFeed {
        tenant: 1,
        batches: campaign1.events.chunks(2048).map(<[_]>::to_vec).collect(),
    };
    service.run_ingest(std::slice::from_ref(&feed), 2, 0)?;
    println!(
        "site 1: ingested {} rows from its own campaign (seed 271)",
        campaign1.events.len()
    );

    // Site 2: snapshot isolation. Pin a reader mid-ingest; it keeps
    // seeing exactly the prefix it pinned while ingest continues.
    // Small batches so the bounded queue (8 batches) overflows and
    // drains into sealed segments well before the feed ends.
    let campaign2 = Pipeline::new().scale(0.01).seed(828).run()?;
    let batches: Vec<Vec<OrderedEvent>> =
        campaign2.events.chunks(1024).map(<[_]>::to_vec).collect();
    let half = batches.len() / 2;
    for batch in &batches[..half] {
        service.submit(2, batch)?;
    }
    let pinned = service.snapshot(2)?;
    for batch in &batches[half..] {
        service.submit(2, batch)?;
    }
    service.flush(2)?;
    let live = service.snapshot(2)?;
    let pinned_rows = usize::try_from(pinned.rows()).expect("row count fits");
    assert_eq!(
        pinned.events()?,
        campaign2.events[..pinned_rows],
        "a pinned snapshot is a serial replay of exactly its prefix"
    );
    println!(
        "site 2: reader pinned {} rows; ingest continued to {} underneath it",
        pinned.rows(),
        live.rows()
    );

    // The published catalogs, as any reader sees them.
    println!();
    for tenant in 0..3 {
        let snap = service.snapshot(tenant)?;
        println!(
            "site {tenant}: {} rows in {} sealed segments ({} bytes published)",
            snap.rows(),
            snap.segment_count(),
            snap.to_bytes().len()
        );
    }

    // One federated query across every site: fan out with worker
    // threads, k-way merge back by (time, node, site).
    let everything = service.federated(Query::all()).workers(4).events()?;
    let total: u64 = (0..3)
        .map(|t| service.snapshot(t).map(|s| s.rows()))
        .sum::<Result<u64, _>>()?;
    assert_eq!(everything.len() as u64, total);
    for w in everything.windows(2) {
        assert!((w[0].time, w[0].node) <= (w[1].time, w[1].node));
    }
    println!(
        "\nfederated scan: {} rows across all sites, one (time, node)-ordered stream",
        everything.len()
    );

    // A pruned federated query: only the first half of the traced span.
    // Zone maps reject segments entirely outside the window per tenant.
    let (t0, t1) = (
        everything.first().map_or(0, |e| e.time.as_micros()),
        everything.last().map_or(0, |e| e.time.as_micros()),
    );
    let window = Query::all().time_window(
        SimTime::from_micros(t0),
        SimTime::from_micros(t0 + (t1 - t0) / 2),
    );
    let early = service.federated(window).workers(4).events()?;
    let snap = registry.snapshot();
    println!(
        "windowed federated scan: {} rows; pruning skipped {} of {} segments",
        early.len(),
        snap.counters["serve.federated_segments_pruned"],
        snap.counters["serve.federated_segments_pruned"]
            + snap.counters["serve.federated_segments_scanned"],
    );
    println!(
        "service counters: {} batches in, {} rows in, {} segments sealed, \
         {} backpressure stalls, {} federated queries",
        snap.counters["serve.batches_ingested"],
        snap.counters["serve.rows_ingested"],
        snap.counters["serve.segments_sealed"],
        snap.counters["serve.backpressure_stalls"],
        snap.counters["serve.federated_queries"],
    );

    println!(
        "\nEvery byte above is a pure function of the service seed and the\n\
         per-site batch sequences: worker counts, interleavings, and\n\
         backpressure timing cannot change a published catalog\n\
         (`charisma-verify serve` is the gate that proves it)."
    );
    Ok(())
}
