//! The CFD campaign under fire: one I/O node dies mid-run.
//!
//! Runs the same 32-node CFD-style campaign as `cfd_campaign` twice —
//! once on a healthy machine, once under a fault plan that kills one of
//! CFS's I/O nodes partway through and makes the surviving disks flaky —
//! and prints the before/after deltas. The campaign *completes* both
//! times: reads around the dead node's stripes fail over to the next
//! live I/O node, flaky reads retry with capped exponential backoff, and
//! every recovery action is counted under `faults.*`.
//!
//! ```text
//! cargo run --release --example degraded_io
//! ```

use charisma::cfs::CfsFaults;
use charisma::ipsc::faults::{mix_seed, FaultMetrics};
use charisma::ipsc::IoNodeDown;
use charisma::prelude::*;

const NODES: u16 = 32;
const RECORD: u32 = 512;
const TIMESTEPS: usize = 3;

struct CampaignOutcome {
    end: SimTime,
    messages: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Drive the CFD campaign on a fresh CFS, optionally under a fault plan.
fn run_campaign(
    label: &str,
    faults: Option<(&FaultPlan, &MetricsRegistry)>,
) -> Result<CampaignOutcome, charisma::Error> {
    let machine = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
    let mut cfs = Cfs::new(CfsConfig::nas());
    if let Some((plan, registry)) = faults {
        let fault_seed = mix_seed(plan.seed, 4994);
        cfs.attach_faults(CfsFaults::new(
            plan,
            fault_seed,
            Some(FaultMetrics::register(registry)),
        ));
    }
    let mut now = SimTime::from_secs(1);

    // Stage the shared grid file, as the host's staging would. 32 MB is
    // deliberately larger than the I/O nodes' aggregate buffer cache
    // (10 nodes x 512 blocks x 4 KB = 20 MB): the interleaved timestep
    // reads must go to the disks, where the fault plan lives.
    let grid_bytes: u32 = 32 << 20;
    let staged = cfs.open(0, "grid.dat", Access::Write, IoMode::Independent, 0, false)?;
    cfs.write(&machine, staged.session, 0, grid_bytes, now)?;
    cfs.close(staged.session, 0)?;

    let job = 1u32;
    let mut messages = 0u64;
    for step in 0..TIMESTEPS {
        let mut session = 0;
        for n in 0..NODES {
            session = cfs
                .open(job, "grid.dat", Access::Read, IoMode::Independent, n, false)?
                .session;
        }
        let mut step_end = now;
        // Interleaved read: node n takes records n, n+32, n+64, ...
        for n in 0..NODES {
            let records = grid_bytes / RECORD / u32::from(NODES);
            for k in 0..records {
                let offset = u64::from(k) * u64::from(RECORD) * u64::from(NODES)
                    + u64::from(n) * u64::from(RECORD);
                cfs.seek(session, n, offset)?;
                let out = cfs.read(&machine, session, n, RECORD, now)?;
                step_end = step_end.max(out.completion);
                messages += out.messages;
            }
        }
        for n in 0..NODES {
            cfs.close(session, n)?;
        }

        // Per-node outputs: each node writes its own solution file.
        for n in 0..NODES {
            let path = format!("soln.step{step}.node{n}");
            let o = cfs.open(job, &path, Access::Write, IoMode::Independent, n, false)?;
            for _ in 0..48 {
                let out = cfs.write(&machine, o.session, n, 1024, now)?;
                step_end = step_end.max(out.completion);
                messages += out.messages;
            }
            cfs.close(o.session, n)?;
        }
        println!(
            "  [{label}] timestep {step}: finished at t={:.3}s",
            step_end.as_secs_f64()
        );
        now = step_end;
    }

    let s = cfs.stats();
    Ok(CampaignOutcome {
        end: now,
        messages,
        cache_hits: s.cache_hits,
        cache_misses: s.cache_misses,
    })
}

fn main() -> Result<(), charisma::Error> {
    println!("healthy machine:");
    let healthy = run_campaign("healthy", None)?;

    // Kill I/O node 7 a third of the way into the healthy run, and make
    // the surviving disks flaky: 30% of blocks need retries, service 50%
    // degraded, with a 60 s per-request timeout.
    let down_at = healthy.end.as_micros() / 3;
    let plan = FaultPlan {
        seed: 0x0D15_C0FF,
        disk_transient_ppm: 300_000,
        disk_degrade_ppm: 500_000,
        io_node_down: vec![IoNodeDown {
            io_node: 7,
            at_us: down_at,
        }],
        retry: RetryPolicy {
            max_retries: 3,
            base_backoff_us: 1_000,
            backoff_cap_us: 32_000,
            timeout_us: 60_000_000,
        },
        ..FaultPlan::none()
    };
    println!(
        "\ndegraded machine (I/O node 7 dies at t={:.3}s, disks flaky):",
        down_at as f64 / 1e6
    );
    let registry = MetricsRegistry::new();
    let degraded = run_campaign("degraded", Some((&plan, &registry)))?;

    let hit_rate = |o: &CampaignOutcome| {
        100.0 * o.cache_hits as f64 / (o.cache_hits + o.cache_misses).max(1) as f64
    };
    // The campaign starts at t=1s; everything after that is I/O time.
    let io_secs = |o: &CampaignOutcome| o.end.as_secs_f64() - 1.0;
    println!("\nbefore/after:");
    println!(
        "  I/O time   : {:>9.3}ms -> {:>9.3}ms  ({:+.1}%)",
        1e3 * io_secs(&healthy),
        1e3 * io_secs(&degraded),
        100.0 * (io_secs(&degraded) / io_secs(&healthy) - 1.0)
    );
    println!(
        "  messages   : {:>10} -> {:>10}",
        healthy.messages, degraded.messages
    );
    println!(
        "  cache hits : {:>9.1}% -> {:>9.1}%",
        hit_rate(&healthy),
        hit_rate(&degraded)
    );

    let snapshot = registry.snapshot();
    let counter = |key: &str| snapshot.counters.get(key).copied().unwrap_or(0);
    println!("\nrecovery machinery (faults.* counters):");
    println!("  injected faults   : {:>8}", counter("faults.injected"));
    println!(
        "  flaky-block reads : {:>8}",
        counter("faults.disk_transient")
    );
    println!("  retries (backoff) : {:>8}", counter("faults.retried"));
    println!("  degraded serves   : {:>8}", counter("faults.degraded"));
    println!("  request timeouts  : {:>8}", counter("faults.timed_out"));
    println!(
        "\nevery read was answered: stripes on the dead node failed over to\n\
         the next live I/O node, and flaky blocks were retried — the campaign\n\
         degrades instead of dying."
    );
    Ok(())
}
