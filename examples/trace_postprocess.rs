//! The measurement pipeline itself: drifting clocks, clock rectification,
//! and the archived form of the merged stream.
//!
//! The iPSC/860 had no synchronized clocks; the paper timestamped each
//! trace block when it left a node and when the collector received it,
//! and fit per-node corrections. This example runs the pipeline sharded,
//! pokes at the raw per-shard traces (clock fits, residual inversions),
//! then follows the modern path the merged stream takes afterwards: it is
//! written as a `charisma-store` columnar archive, reopened from disk,
//! and queried with zone-map pruning — the post-study workflow the
//! original tracing team did by re-reading flat trace files.
//!
//! ```text
//! cargo run --release --example trace_postprocess
//! ```

use charisma::prelude::*;
use charisma::store::StoreMetrics;
use charisma::trace::postprocess::fit_all_clocks;

fn main() -> Result<(), charisma::Error> {
    // `target/` keeps the archive out of the source tree.
    let path = std::path::Path::new("target/trace_postprocess.charchive");
    let out = Pipeline::new()
        .scale(0.02)
        .seed(4994)
        .shards(2)
        .sink(ArchiveSink::Path(path.into()))
        .run()?;

    // `PipelineOutput` keeps the raw pre-rectification traces, one per
    // logical shard, for exactly this kind of measurement-layer analysis.
    let total_blocks: usize = out
        .workload
        .shards
        .iter()
        .map(|s| s.trace.blocks.len())
        .sum();
    println!(
        "collected {} blocks, {} records across {} shard traces",
        total_blocks,
        out.workload.event_count(),
        out.workload.shards.len()
    );

    // Estimated clock corrections per node, from the first shard's trace.
    let trace = &out.workload.shards[0].trace;
    let fits = fit_all_clocks(trace);
    let drifts: Vec<f64> = fits
        .iter()
        .map(|f| (f.b - 1.0) * 1e6) // estimated relative drift, ppm
        .collect();
    let max = drifts.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    println!("estimated per-node clock drifts up to {max:.1} ppm relative to the collector");

    // How disordered is the merged rectified stream? Residual inversions
    // can only come from rectification error, not the merge: the merge is
    // ordered by construction.
    let mut inversions = 0u64;
    for w in out.events.windows(2) {
        if w[1].time < w[0].time {
            inversions += 1;
        }
    }
    println!(
        "rectified merged stream: {} events, {} residual timestamp inversions",
        out.events.len(),
        inversions
    );

    // The pipeline wrote the merged stream as a columnar archive in the
    // same pass that analyzed it. Reopen it from disk — everything below
    // runs without the generator.
    let archive = Archive::open(path)?;
    println!(
        "\narchive: {} rows in {} segments, {} bytes on disk ({:.2} bytes/record)",
        archive.rows(),
        archive.segments(),
        archive.size_bytes(),
        archive.size_bytes() as f64 / archive.rows().max(1) as f64,
    );
    let full = archive.query(Query::all()).workers(4).events()?;
    assert_eq!(full, out.events, "archive round-trips the merged stream");

    // One pruned query: the middle third of the traced period. The zone
    // maps reject segments entirely outside the window before any decode.
    let (t0, t1) = archive.time_span().expect("archive is non-empty");
    let span = t1.as_micros() - t0.as_micros();
    let window = Query::all().time_window(
        SimTime::from_micros(t0.as_micros() + span / 3),
        SimTime::from_micros(t0.as_micros() + 2 * span / 3),
    );
    let registry = MetricsRegistry::new();
    let report = archive
        .query(window)
        .workers(4)
        .attach_metrics(StoreMetrics::register(&registry))
        .report()?;
    let snap = registry.snapshot();
    println!(
        "middle-third query: pruned {} of {} segments, scanned {} rows, matched {}",
        snap.counters["store.segments_pruned"],
        archive.segments(),
        snap.counters["store.rows_scanned"],
        snap.counters["store.rows_matched"],
    );
    println!(
        "jobs active in the window: {} (of {} in the full trace)",
        report.chars.jobs.len(),
        out.report.chars.jobs.len(),
    );

    println!(
        "\nThe event order is still approximate — which is why the paper\n\
         bases its analysis on spatial rather than temporal information\n\
         (§3.2), and why this reproduction's analyses are all offset-based\n\
         too. The archive preserves that order exactly as merged."
    );
    Ok(())
}
