//! The measurement pipeline itself: drifting clocks, 4 KB record buffers,
//! and how well postprocessing reconstructs event order.
//!
//! The iPSC/860 had no synchronized clocks; the paper timestamped each
//! trace block when it left a node and when the collector received it,
//! and fit per-node corrections. This example runs the pipeline sharded,
//! pokes at the raw per-shard traces (file-format round trip, clock fits),
//! and quantifies the ordering quality of the merged rectified stream.
//!
//! ```text
//! cargo run --release --example trace_postprocess
//! ```

use charisma::prelude::*;
use charisma::trace::file::{read_trace, write_trace};
use charisma::trace::postprocess::fit_all_clocks;

fn main() -> Result<(), charisma::Error> {
    let out = Pipeline::new().scale(0.02).seed(4994).shards(2).run()?;

    // `PipelineOutput` keeps the raw pre-rectification traces, one per
    // logical shard, for exactly this kind of measurement-layer analysis.
    let total_blocks: usize = out
        .workload
        .shards
        .iter()
        .map(|s| s.trace.blocks.len())
        .sum();
    println!(
        "collected {} blocks, {} records across {} shard traces",
        total_blocks,
        out.workload.event_count(),
        out.workload.shards.len()
    );

    // Round-trip each shard's self-descriptive trace file format.
    let mut total_bytes = 0usize;
    for shard in &out.workload.shards {
        let mut bytes = Vec::new();
        write_trace(&shard.trace, &mut bytes)?;
        let back = read_trace(bytes.as_slice())?;
        assert_eq!(&back, &shard.trace);
        total_bytes += bytes.len();
    }
    println!(
        "trace files round-trip: {} bytes ({} bytes/record)",
        total_bytes,
        total_bytes / out.workload.event_count().max(1)
    );

    // Estimated clock corrections per node, from the first shard's trace.
    let trace = &out.workload.shards[0].trace;
    let fits = fit_all_clocks(trace);
    let drifts: Vec<f64> = fits
        .iter()
        .map(|f| (f.b - 1.0) * 1e6) // estimated relative drift, ppm
        .collect();
    let max = drifts.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    println!("estimated per-node clock drifts up to {max:.1} ppm relative to the collector");

    // How disordered is the merged rectified stream? Residual inversions
    // can only come from rectification error, not the merge: the merge is
    // ordered by construction.
    let mut inversions = 0u64;
    for w in out.events.windows(2) {
        if w[1].time < w[0].time {
            inversions += 1;
        }
    }
    println!(
        "rectified merged stream: {} events, {} residual timestamp inversions",
        out.events.len(),
        inversions
    );
    println!(
        "\nThe order is still approximate — which is why the paper bases its\n\
         analysis on spatial rather than temporal information (§3.2), and\n\
         why this reproduction's analyses are all offset-based too."
    );
    Ok(())
}
