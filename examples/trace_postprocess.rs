//! The measurement pipeline itself: drifting clocks, 4 KB record buffers,
//! and how well postprocessing reconstructs event order.
//!
//! The iPSC/860 had no synchronized clocks; the paper timestamped each
//! trace block when it left a node and when the collector received it,
//! and fit per-node corrections. This example generates a workload on a
//! machine with realistically bad clocks, runs the rectification, writes
//! the trace to disk, reads it back, and quantifies the ordering quality.
//!
//! ```text
//! cargo run --release --example trace_postprocess
//! ```

use charisma::prelude::*;
use charisma::trace::file::{read_trace, write_trace};
use charisma::trace::postprocess::fit_all_clocks;

fn main() {
    let workload = generate(GeneratorConfig {
        scale: 0.02,
        seed: 4994,
        ..Default::default()
    });
    let trace = &workload.trace;
    println!(
        "collected {} blocks, {} records",
        trace.blocks.len(),
        trace.event_count()
    );

    // Round-trip the self-descriptive trace file format.
    let mut bytes = Vec::new();
    write_trace(trace, &mut bytes).expect("serialize");
    let back = read_trace(bytes.as_slice()).expect("parse");
    assert_eq!(&back, trace);
    println!(
        "trace file round-trips: {} bytes ({} bytes/record)",
        bytes.len(),
        bytes.len() / trace.event_count().max(1)
    );

    // Estimated clock corrections per node.
    let fits = fit_all_clocks(trace);
    let drifts: Vec<f64> = fits
        .iter()
        .map(|f| (f.b - 1.0) * 1e6) // estimated relative drift, ppm
        .collect();
    let max = drifts.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    println!("estimated per-node clock drifts up to {max:.1} ppm relative to the collector");

    // How disordered was the raw trace, and how much does rectification
    // help? Count adjacent inversions by true generation order proxy:
    // block receive stamps vs record order.
    let ordered = postprocess(trace);
    let mut inversions = 0u64;
    for w in ordered.windows(2) {
        if w[1].time < w[0].time {
            inversions += 1;
        }
    }
    println!(
        "rectified stream: {} events, {} residual timestamp inversions",
        ordered.len(),
        inversions
    );
    println!(
        "\nThe order is still approximate — which is why the paper bases its\n\
         analysis on spatial rather than temporal information (§3.2), and\n\
         why this reproduction's analyses are all offset-based too."
    );
}
