//! A CFD-style application driven by hand through the CFS API.
//!
//! This is the workload the paper's introduction motivates: a parallel
//! solver on a 32-node subcube that broadcasts a parameter file, reads an
//! interleaved grid, and writes one output file per node per timestep —
//! the access pattern behind the paper's "44,500 write-only files".
//!
//! ```text
//! cargo run --release --example cfd_campaign
//! ```

use charisma::prelude::*;

const NODES: u16 = 32;
const RECORD: u32 = 512;
const TIMESTEPS: usize = 3;

fn main() -> Result<(), charisma::Error> {
    let machine = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
    let mut cfs = Cfs::new(CfsConfig::nas());
    let mut now = SimTime::from_secs(1);

    // Stage the shared grid file (256 KB), as the host's staging would.
    let grid_bytes: u32 = 512 * 512;
    let staged = cfs.open(0, "grid.dat", Access::Write, IoMode::Independent, 0, false)?;
    cfs.write(&machine, staged.session, 0, grid_bytes, now)?;
    cfs.close(staged.session, 0)?;

    let job = 1u32;
    for step in 0..TIMESTEPS {
        // Broadcast read: every node slurps the parameter file whole.
        let mut params = 0;
        for n in 0..NODES {
            params = cfs
                .open(job, "grid.dat", Access::Read, IoMode::Independent, n, false)?
                .session;
        }
        let mut step_end = now;
        let mut messages = 0;
        // Interleaved read: node n takes records n, n+32, n+64, ...
        for n in 0..NODES {
            let records = grid_bytes / RECORD / u32::from(NODES);
            for k in 0..records {
                let offset = u64::from(k) * u64::from(RECORD) * u64::from(NODES)
                    + u64::from(n) * u64::from(RECORD);
                cfs.seek(params, n, offset)?;
                let out = cfs.read(&machine, params, n, RECORD, now)?;
                step_end = step_end.max(out.completion);
                messages += out.messages;
            }
        }
        for n in 0..NODES {
            cfs.close(params, n)?;
        }

        // Per-node outputs: each node writes its own solution file.
        for n in 0..NODES {
            let path = format!("soln.step{step}.node{n}");
            let o = cfs.open(job, &path, Access::Write, IoMode::Independent, n, false)?;
            for _ in 0..48 {
                let out = cfs.write(&machine, o.session, n, 1024, now)?;
                step_end = step_end.max(out.completion);
                messages += out.messages;
            }
            cfs.close(o.session, n)?;
        }
        println!(
            "timestep {step}: {:>8} messages, finished at t={:.3}s",
            messages,
            step_end.as_secs_f64()
        );
        now = step_end;
    }

    let s = cfs.stats();
    println!("\ncampaign totals:");
    println!(
        "  reads  : {:>8} requests, {:>10} bytes",
        s.reads, s.bytes_read
    );
    println!(
        "  writes : {:>8} requests, {:>10} bytes",
        s.writes, s.bytes_written
    );
    println!(
        "  I/O-node cache: {} hits / {} misses ({:.1}% hit rate)",
        s.cache_hits,
        s.cache_misses,
        100.0 * s.cache_hits as f64 / (s.cache_hits + s.cache_misses).max(1) as f64
    );
    println!(
        "  (the interleave's interprocess spatial locality is what makes\n   \
         the I/O-node cache work — the paper's central §4.8 finding)"
    );
    Ok(())
}
