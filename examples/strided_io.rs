//! The paper's §5 recommendation, live: express a parallel interleaved
//! read as one strided request instead of hundreds of small ones.
//!
//! ```text
//! cargo run --release --example strided_io
//! ```

use charisma::prelude::*;

fn main() -> Result<(), charisma::Error> {
    let machine = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
    let mut cfs = Cfs::new(CfsConfig::nas());
    let t0 = SimTime::from_secs(1);

    // Stage a 4 MB input file.
    let nodes: u16 = 64;
    let record: u32 = 512;
    let total: u32 = 4 << 20;
    let o = cfs.open(0, "input", Access::Write, IoMode::Independent, 0, false)?;
    let mut done = 0;
    while done < total {
        let chunk = (total - done).min(1 << 20);
        cfs.write(&machine, o.session, 0, chunk, t0)?;
        done += chunk;
    }
    cfs.close(o.session, 0)?;

    // Node 7's share of the interleave: records 7, 7+64, 7+128, ...
    let spec = StridedSpec {
        start: 7 * u64::from(record),
        record_bytes: record,
        stride: u64::from(record) * u64::from(nodes),
        count: total / record / u32::from(nodes),
    };
    println!(
        "pattern: {} records of {} B, interval {} B (the paper's 'regular,\n\
         structured access pattern')\n",
        spec.count,
        spec.record_bytes,
        spec.interval()
    );

    // The CFS way: a loop of seek+read calls.
    let o1 = cfs.open(1, "input", Access::Read, IoMode::Independent, 7, false)?;
    let lp = cfs.strided_as_loop(&machine, o1.session, 7, spec, t0, false)?;
    cfs.close(o1.session, 7)?;

    // The recommended way: one strided request.
    let o2 = cfs.open(2, "input", Access::Read, IoMode::Independent, 7, false)?;
    let st = cfs.read_strided(&machine, o2.session, 7, spec, t0)?;
    cfs.close(o2.session, 7)?;

    println!(
        "{:<20} {:>10} {:>12} {:>10}",
        "", "messages", "elapsed", "bytes"
    );
    for (name, out) in [("small-request loop", lp), ("strided request", st)] {
        println!(
            "{:<20} {:>10} {:>11.4}s {:>10}",
            name,
            out.messages,
            (out.completion - t0).as_secs_f64(),
            out.bytes
        );
    }
    assert_eq!(lp.bytes, st.bytes);
    println!(
        "\nSame bytes, a fraction of the messages: \"a strided request can\n\
         express a regular request and interval size …, effectively\n\
         increasing the request size, lowering overhead\" (§5)."
    );
    Ok(())
}
