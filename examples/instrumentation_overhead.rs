//! How much did the tracing itself cost? The paper benchmarked its
//! instrumented CFS library and found the overhead "virtually
//! undetectable in many cases", with a worst case of a 7% slowdown on one
//! run of the NAS NHT-1 Application-I/O Benchmark (§3.1).
//!
//! This example replays an NHT-1-style I/O benchmark (a parallel
//! application alternating computation with intense read/write phases)
//! through the simulated machine twice — once bare, once charging each
//! CFS call the instrumentation cost (an event-record append, plus a 4 KB
//! flush message every time the node buffer fills) — and reports the
//! slowdown.
//!
//! ```text
//! cargo run --release --example instrumentation_overhead
//! ```

use charisma::ipsc::Duration;
use charisma::prelude::*;

/// Cost of appending one event record to the node-local 4 KB buffer
/// (a few dozen i860 instructions plus a gettime call).
const RECORD_APPEND_US: u64 = 25;
/// Records per 4 KB buffer (the paper's ~90 % message reduction implies
/// roughly this many records per flush).
const RECORDS_PER_FLUSH: u64 = 170;

/// Run the NHT-1-style benchmark; returns the simulated makespan.
fn run_benchmark(instrumented: bool) -> Result<f64, charisma::Error> {
    let machine = Machine::boot_synchronized(MachineConfig::nas_ipsc860());
    let mut cfs = Cfs::new(CfsConfig::nas());
    let nodes: u16 = 16;
    let t0 = SimTime::from_secs(1);

    // Per-node event counter for flush accounting.
    let mut records = vec![0u64; nodes as usize];
    let mut clock = vec![t0; nodes as usize];
    let charge = |node: u16, clock: &mut Vec<SimTime>, records: &mut Vec<u64>| {
        if !instrumented {
            return;
        }
        let n = node as usize;
        records[n] += 1;
        clock[n] += Duration::from_micros(RECORD_APPEND_US);
        if records[n].is_multiple_of(RECORDS_PER_FLUSH) {
            // The flush message to the service node happens on the node's
            // critical path (send overhead; transit is asynchronous).
            clock[n] += Duration::from_micros(120);
        }
    };

    // Phase 1: every node writes a 1 MB result file in 8 KB records.
    let mut sessions = Vec::new();
    for n in 0..nodes {
        let o = cfs.open(
            1,
            &format!("nht1/out{n}"),
            Access::Write,
            IoMode::Independent,
            n,
            false,
        )?;
        charge(n, &mut clock, &mut records);
        sessions.push(o.session);
    }
    for _ in 0..128 {
        for n in 0..nodes {
            let i = n as usize;
            let out = cfs.write(&machine, sessions[i], n, 8192, clock[i])?;
            clock[i] = out.completion;
            charge(n, &mut clock, &mut records);
        }
    }
    for n in 0..nodes {
        cfs.close(sessions[n as usize], n)?;
        charge(n, &mut clock, &mut records);
    }

    // Phase 2: every node reads its file back in small records.
    for n in 0..nodes {
        let o = cfs.open(
            2,
            &format!("nht1/out{n}"),
            Access::Read,
            IoMode::Independent,
            n,
            false,
        )?;
        charge(n, &mut clock, &mut records);
        let i = n as usize;
        for _ in 0..1024 {
            let out = cfs.read(&machine, o.session, n, 1024, clock[i])?;
            clock[i] = out.completion;
            charge(n, &mut clock, &mut records);
        }
        cfs.close(o.session, n)?;
        charge(n, &mut clock, &mut records);
    }

    Ok(clock
        .iter()
        .map(|t| (*t - t0).as_secs_f64())
        .fold(0.0, f64::max))
}

fn main() -> Result<(), charisma::Error> {
    let bare = run_benchmark(false)?;
    let traced = run_benchmark(true)?;
    let overhead = 100.0 * (traced - bare) / bare;
    println!("NHT-1-style benchmark, 16 nodes, 2176 I/O calls per node:");
    println!("  uninstrumented makespan: {bare:.3}s (simulated)");
    println!("  instrumented makespan:   {traced:.3}s (simulated)");
    println!("  tracing overhead:        {overhead:.2}%");
    println!();
    println!(
        "The paper reports a worst case of 7% on one NHT-1 run and\n\
         'virtually undetectable' overhead elsewhere (§3.1); the buffered\n\
         collection path keeps the per-call cost to an in-memory append."
    );
    assert!(overhead < 10.0, "instrumentation must stay cheap");
    Ok(())
}
