//! End-to-end integration: generate → collect → rectify → characterize,
//! asserting the paper's qualitative findings hold at reduced scale.
//!
//! These are *shape* assertions (who wins, which spikes exist), not
//! absolute-number matches: absolute counts scale with the workload and
//! the singleton applications (the out-of-core job, the checkpointer) are
//! deliberately not scaled down.

use charisma::cachesim::{Policy, SessionIndex};
use charisma::core::analyze::SessionClass;
use charisma::core::{census, intervals, jobs, modes, requests, sequential, sharing};
use charisma::prelude::*;

/// One shared pipeline for the whole file (generation dominates runtime).
fn pipeline() -> (Vec<OrderedEvent>, Characterization, SessionIndex) {
    let workload = generate(GeneratorConfig {
        scale: 0.10,
        seed: 4994,
        ..Default::default()
    });
    let events = postprocess(&workload.trace);
    let chars = analyze(&events);
    let index = SessionIndex::build(&events);
    (events, chars, index)
}

#[test]
fn paper_shapes_hold_end_to_end() {
    let (events, chars, index) = pipeline();

    // --- §4.1: jobs ------------------------------------------------------
    let profile = jobs::concurrency_profile(&chars);
    assert!(
        profile[0] > 0.10,
        "the machine is idle a good fraction of the time"
    );
    assert!(
        profile.iter().skip(2).sum::<f64>() > 0.15,
        "multiprogramming is real: >1 job a good fraction of the time"
    );
    let usage = jobs::node_usage(&chars);
    let one_node = usage.iter().find(|&&(n, _)| n == 1).expect("1-node jobs").1;
    assert!(one_node > 60.0, "one-node jobs dominate the population");
    assert!(
        usage.iter().all(|&(n, _)| n.is_power_of_two()),
        "the iPSC limits node counts to powers of two"
    );
    let share = jobs::node_time_share(&chars);
    let big: f64 = share
        .iter()
        .filter(|&&(n, _)| n >= 32)
        .map(|&(_, s)| s)
        .sum();
    assert!(big > 0.5, "large parallel jobs dominate node usage: {big}");

    // --- §4.2: files ------------------------------------------------------
    let cen = census::census(&chars);
    assert!(
        cen.write_only > 2 * cen.read_only,
        "write-only files dominate"
    );
    assert!(cen.read_only > cen.read_write || cen.read_only > 500);
    assert!(cen.unaccessed > 0, "open-but-unaccessed files exist");
    assert!(
        cen.temporary_fraction() < 0.1,
        "temporary files are rare: {}",
        cen.temporary_fraction()
    );
    let size_cdf = census::size_cdf(&chars);
    // Most files are "large" (10 KB to 1 MB).
    let mid_mass = size_cdf.fraction_le(1_000_000) - size_cdf.fraction_le(10_000);
    assert!(
        mid_mass > 0.5,
        "file-size mass sits in 10KB..1MB: {mid_mass}"
    );

    // --- §4.3: request sizes ----------------------------------------------
    let rs = requests::request_sizes(&events);
    assert!(
        rs.small_read_fraction() > 0.85,
        "the vast majority of reads are small"
    );
    assert!(
        rs.small_read_data_fraction() < 0.10,
        "but they move almost none of the data"
    );
    assert!(rs.small_write_fraction() > 0.75);
    assert!(rs.small_write_data_fraction() < 0.15);

    // --- §4.4: sequentiality ----------------------------------------------
    let seq = sequential::cdfs(&chars, sequential::Metric::Sequential);
    assert!(
        seq.fully(SessionClass::ReadOnly) > 0.7,
        "most read-only files are 100% sequential"
    );
    assert!(seq.fully(SessionClass::WriteOnly) > 0.7);
    assert!(
        seq.fully(SessionClass::ReadWrite) < 0.3,
        "read-write files are mostly non-sequential"
    );
    let con = sequential::cdfs(&chars, sequential::Metric::Consecutive);
    assert!(
        con.fully(SessionClass::WriteOnly) > con.fully(SessionClass::ReadOnly),
        "interleaving makes read-only files much less consecutive than write-only"
    );

    // --- §4.5: regularity --------------------------------------------------
    let t2 = intervals::interval_table(&chars);
    let p2 = t2.percents();
    assert!(p2[0] + p2[1] + p2[2] > 85.0, "access patterns are regular");
    assert!(
        intervals::one_interval_consecutive_fraction(&chars) > 0.8,
        "single-interval files are overwhelmingly consecutive"
    );
    let t3 = intervals::request_size_table(&chars);
    let p3 = t3.percents();
    assert!(p3[1] + p3[2] > 70.0, "one or two request sizes dominate");

    // --- §4.6: modes --------------------------------------------------------
    let mu = modes::mode_usage(&chars);
    assert!(
        mu.mode0_fraction() > 0.99,
        "mode 0 dominates: {}",
        mu.mode0_fraction()
    );

    // --- §4.7: sharing -------------------------------------------------------
    assert_eq!(
        sharing::concurrent_interjob_shares(&chars),
        0,
        "no concurrent file sharing between jobs"
    );
    let sh = sharing::sharing_cdfs(&chars);
    assert!(
        sh.read_bytes.total() > 0.0,
        "read-only sharing population exists"
    );
    // More sharing for read-only than write-only files.
    let ro_full = 1.0 - sh.read_bytes.fraction_le(99);
    let wo_none = sh.write_bytes.fraction_le(0);
    assert!(
        ro_full > 0.4,
        "many read-only files fully byte-shared: {ro_full}"
    );
    assert!(
        wo_none > 0.7,
        "most write-only files share no bytes: {wo_none}"
    );

    // --- §4.8: caching -------------------------------------------------------
    let f8 = charisma::cachesim::compute_cache_sim(&events, &index, 1);
    assert!(
        f8.fraction_of_jobs_at_zero() > 0.1,
        "a zero-hit clump exists"
    );
    assert!(
        f8.fraction_of_jobs_above(0.75) > 0.2,
        "a high-hit clump exists"
    );
    let f8_many = charisma::cachesim::compute_cache_sim(&events, &index, 10);
    assert!(
        (f8.hit_rate() - f8_many.hit_rate()).abs() < 0.1,
        "one buffer is nearly as good as many: {} vs {}",
        f8.hit_rate(),
        f8_many.hit_rate()
    );

    let small = charisma::cachesim::io_cache_sim(&events, &index, 10, 100, Policy::Lru);
    let big = charisma::cachesim::io_cache_sim(&events, &index, 10, 2000, Policy::Lru);
    assert!(
        big.hit_rate() > 0.8,
        "a modest I/O-node cache reaches a high hit rate"
    );
    assert!(big.hit_rate() >= small.hit_rate());
    let fifo = charisma::cachesim::io_cache_sim(&events, &index, 10, 100, Policy::Fifo);
    assert!(
        small.hit_rate() >= fifo.hit_rate() - 0.01,
        "LRU at least matches FIFO: {} vs {}",
        small.hit_rate(),
        fifo.hit_rate()
    );

    let combined = charisma::cachesim::combined_simulation(&events, &index, 1, 10, 50);
    assert!(
        combined.io_hit_rate_reduction().abs() < 0.10,
        "compute-node filtering barely dents the I/O-node hit rate: {}",
        combined.io_hit_rate_reduction()
    );
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let a = generate(GeneratorConfig::test_scale(0.02));
    let b = generate(GeneratorConfig::test_scale(0.02));
    assert_eq!(a.trace.event_count(), b.trace.event_count());
    let ea = postprocess(&a.trace);
    let eb = postprocess(&b.trace);
    assert_eq!(ea, eb, "the whole pipeline is reproducible per seed");
}

#[test]
fn different_seeds_give_different_traces_same_shapes() {
    let a = generate(GeneratorConfig {
        scale: 0.05,
        seed: 1,
        ..Default::default()
    });
    let b = generate(GeneratorConfig {
        scale: 0.05,
        seed: 2,
        ..Default::default()
    });
    assert_ne!(postprocess(&a.trace), postprocess(&b.trace), "seeds matter");
    // But the qualitative shape is seed-independent.
    for w in [a, b] {
        let events = postprocess(&w.trace);
        let rs = requests::request_sizes(&events);
        assert!(rs.small_read_fraction() > 0.8);
        let chars = analyze(&events);
        let mu = modes::mode_usage(&chars);
        assert!(mu.mode0_fraction() > 0.99);
    }
}
