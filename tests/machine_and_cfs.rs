//! Cross-crate scenarios driving the machine and CFS together through the
//! public facade — multi-job capacity pressure, mode coordination, and
//! the extension interfaces.

use charisma::cfs::{CfsError, CollectiveShare};
use charisma::prelude::*;

fn setup() -> (Machine, Cfs) {
    (
        Machine::boot_synchronized(MachineConfig::nas_ipsc860()),
        Cfs::new(CfsConfig::nas()),
    )
}

#[test]
fn many_jobs_share_the_file_system_without_interference() {
    let (machine, mut cfs) = setup();
    let t0 = SimTime::from_secs(1);
    // Eight jobs, each with its own files, interleaved request streams.
    let mut sessions = Vec::new();
    for job in 0..8u32 {
        let o = cfs
            .open(
                job,
                &format!("job{job}/out"),
                Access::Write,
                IoMode::Independent,
                0,
                false,
            )
            .expect("open");
        sessions.push(o);
    }
    for round in 0..50 {
        for (job, o) in sessions.iter().enumerate() {
            let out = cfs
                .write(
                    &machine,
                    o.session,
                    0,
                    1024,
                    t0 + charisma::ipsc::Duration::from_millis(round),
                )
                .expect("write");
            assert_eq!(out.offset, round * 1024, "job {job} pointer is private");
        }
    }
    for o in &sessions {
        assert_eq!(cfs.close(o.session, 0).expect("close"), 50 * 1024);
    }
}

#[test]
fn capacity_pressure_hits_no_space_and_delete_recovers() {
    let (machine, mut cfs) = setup(); // 7.6 GB total
    let t0 = SimTime::from_secs(1);
    let mut files = Vec::new();
    let mut failed = false;
    // Write 2 GB files until the disk farm fills.
    'outer: for i in 0..8 {
        let o = cfs
            .open(
                1,
                &format!("big{i}"),
                Access::Write,
                IoMode::Independent,
                0,
                false,
            )
            .expect("open");
        files.push(o.file);
        for _ in 0..2048 {
            match cfs.write(&machine, o.session, 0, 1 << 20, t0) {
                Ok(_) => {}
                Err(CfsError::NoSpace { .. }) => {
                    failed = true;
                    cfs.close(o.session, 0).expect("close");
                    break 'outer;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        cfs.close(o.session, 0).expect("close");
    }
    assert!(failed, "7.6 GB cannot hold 16 GB");
    let used_before = cfs.used_bytes();
    cfs.delete(files[0]).expect("delete");
    assert!(cfs.used_bytes() < used_before);
    // Space is writable again.
    let o = cfs
        .open(2, "after", Access::Write, IoMode::Independent, 0, false)
        .expect("open");
    cfs.write(&machine, o.session, 0, 1 << 20, t0)
        .expect("write fits again");
}

#[test]
fn mode_coordination_across_a_whole_job() {
    let (machine, mut cfs) = setup();
    let t0 = SimTime::from_secs(1);
    // Mode 3: fixed-size round-robin across 4 nodes, several rounds.
    let mut session = 0;
    for n in 0..4 {
        session = cfs
            .open(9, "rr", Access::Write, IoMode::RoundRobinFixed, n, false)
            .expect("open")
            .session;
    }
    for round in 0..6u64 {
        for n in 0..4u16 {
            let out = cfs
                .write(&machine, session, n, 512, t0)
                .expect("turn write");
            assert_eq!(
                out.offset,
                (round * 4 + u64::from(n)) * 512,
                "round-robin assigns strictly rotating offsets"
            );
        }
    }
    // A wrong-size request is rejected without corrupting the pointer.
    assert!(matches!(
        cfs.write(&machine, session, 0, 100, t0),
        Err(CfsError::SizeMismatch { .. })
    ));
    let out = cfs
        .write(&machine, session, 0, 512, t0)
        .expect("retry in turn");
    assert_eq!(out.offset, 24 * 512);
}

#[test]
fn strided_and_collective_interfaces_compose_with_the_machine() {
    let (machine, mut cfs) = setup();
    let t0 = SimTime::from_secs(1);
    // Stage 1 MB.
    let o = cfs
        .open(1, "data", Access::Write, IoMode::Independent, 0, false)
        .expect("open");
    cfs.write(&machine, o.session, 0, 1 << 20, t0)
        .expect("stage");
    cfs.close(o.session, 0).expect("close");

    // 4 nodes read it collectively...
    let mut session = 0;
    for n in 0..4 {
        session = cfs
            .open(2, "data", Access::Read, IoMode::Independent, n, false)
            .expect("open")
            .session;
    }
    let shares: Vec<CollectiveShare> = (0..4u16)
        .map(|n| CollectiveShare {
            node: n,
            offset: u64::from(n) * (1 << 18),
            bytes: 1 << 18,
        })
        .collect();
    let col = cfs
        .collective_read(&machine, session, &shares, t0)
        .expect("collective");
    assert_eq!(col.bytes, 1 << 20);
    for n in 0..4 {
        cfs.close(session, n).expect("close");
    }

    // ...and node 0 re-reads every 16th 256-byte record as one strided
    // request.
    let o2 = cfs
        .open(3, "data", Access::Read, IoMode::Independent, 0, false)
        .expect("open");
    let spec = StridedSpec {
        start: 0,
        record_bytes: 256,
        stride: 4096,
        count: 256,
    };
    let st = cfs
        .read_strided(&machine, o2.session, 0, spec, t0)
        .expect("strided");
    assert_eq!(st.bytes, 256 * 256);
    assert!(st.messages <= 20, "one round trip per I/O node");
}

#[test]
fn hypercube_distances_shape_io_latency() {
    let (machine, mut cfs) = setup();
    let t0 = SimTime::from_secs(1);
    let o = cfs
        .open(1, "f", Access::Write, IoMode::Independent, 0, false)
        .expect("open");
    cfs.write(&machine, o.session, 0, 4096, t0).expect("seed");
    cfs.close(o.session, 0).expect("close");

    // Same read from the I/O node's neighbor vs the farthest corner: the
    // near node must complete no later.
    let attach = machine.io_attachment(0);
    let near = attach as u16;
    let far = (attach ^ 0x7F) as u16; // all 7 address bits flipped
    let mut t_near = SimTime::ZERO;
    let mut t_far = SimTime::ZERO;
    for (node, out) in [(near, &mut t_near), (far, &mut t_far)] {
        let o = cfs
            .open(
                10 + u32::from(node),
                "f",
                Access::Read,
                IoMode::Independent,
                node,
                false,
            )
            .expect("open");
        let r = cfs.read(&machine, o.session, node, 512, t0).expect("read");
        *out = r.completion;
        cfs.close(o.session, node).expect("close");
    }
    assert!(t_near <= t_far, "hop count shows up in latency");
}
