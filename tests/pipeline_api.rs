//! Integration tests for the `Pipeline` facade: the sharded parallel run
//! must be indistinguishable from the serial run, and bad configurations
//! must fail loudly instead of producing a quietly wrong study.

use charisma::prelude::*;

/// FNV-1a over an event stream's identity-relevant fields.
fn stream_hash(events: &[OrderedEvent]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in events {
        mix(&e.time.as_micros().to_le_bytes());
        mix(&e.node.to_le_bytes());
        mix(format!("{:?}", e.body).as_bytes());
    }
    hash
}

#[test]
fn worker_count_is_invisible_in_events_and_report() {
    let run = |workers: usize| {
        Pipeline::new()
            .scale(0.02)
            .seed(4994)
            .shards(workers)
            .run()
            .expect("valid config")
    };
    let serial = run(1);
    let serial_hash = stream_hash(&serial.events);
    let serial_report = serial.report.render();

    for workers in [2, 8] {
        let parallel = run(workers);
        assert_eq!(
            stream_hash(&parallel.events),
            serial_hash,
            "event stream changed with {workers} workers"
        );
        assert_eq!(
            parallel.report.render(),
            serial_report,
            "analysis changed with {workers} workers"
        );
        assert_eq!(parallel.events.len(), serial.events.len());
    }
}

#[test]
fn seeds_change_the_stream() {
    let a = Pipeline::new().scale(0.02).seed(1).run().unwrap();
    let b = Pipeline::new().scale(0.02).seed(2).run().unwrap();
    assert_ne!(stream_hash(&a.events), stream_hash(&b.events));
}

#[test]
fn output_is_internally_consistent() {
    let out = Pipeline::new().scale(0.02).shards(4).run().unwrap();
    assert_eq!(out.events.len(), out.workload.event_count());
    assert!(out.stats().jobs > 10);
    // The merged stream is globally ordered.
    for w in out.events.windows(2) {
        assert!((w[0].time, w[0].node) <= (w[1].time, w[1].node));
    }
}

#[test]
fn invalid_scale_is_rejected() {
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        match Pipeline::new().scale(bad).run() {
            Err(err @ charisma::Error::InvalidScale(_)) => {
                assert!(err.to_string().contains("scale"));
            }
            Err(err) => panic!("scale {bad} gave wrong error: {err}"),
            Ok(_) => panic!("scale {bad} was accepted"),
        }
    }
}

#[test]
fn zero_shards_is_rejected() {
    match Pipeline::new().scale(0.01).shards(0).run() {
        Err(charisma::Error::InvalidShards(0)) => {}
        Err(err) => panic!("wrong error: {err}"),
        Ok(_) => panic!("zero shards was accepted"),
    }
}
