//! Failure injection: "Tracing was stopped in one of two ways: manually
//! or by a system crash." (paper §3.1). A crash-terminated trace ends
//! mid-stream: jobs never log their ends, sessions are left open, and the
//! final node buffers are lost. The analysis pipeline must degrade
//! gracefully on such traces — no panics, sane partial statistics.

use charisma::cachesim::{combined_simulation, compute_cache_sim, SessionIndex};
use charisma::core::report::Report;
use charisma::core::{census, jobs};
use charisma::prelude::*;
use charisma::trace::Trace;

/// Chop a trace the way a crash would: keep only blocks the collector
/// received before `fraction` of the collection, losing everything later
/// (including unflushed buffers, which simply never arrive).
fn crash_truncate(trace: &Trace, fraction: f64) -> Trace {
    let keep = ((trace.blocks.len() as f64) * fraction) as usize;
    let mut blocks: Vec<_> = trace.blocks.clone();
    // The collector's file is in arrival order; sort by receive stamp to
    // model the prefix that made it to disk.
    blocks.sort_by_key(|b| b.recv_service);
    blocks.truncate(keep);
    Trace {
        header: trace.header.clone(),
        blocks,
    }
}

#[test]
fn analyses_survive_a_crash_truncated_trace() {
    let w = generate(GeneratorConfig::test_scale(0.03));
    for fraction in [0.0, 0.1, 0.5, 0.9] {
        let crashed = crash_truncate(&w.trace, fraction);
        let events = postprocess(&crashed);
        // Nothing below may panic.
        let report = Report::from_events(&events);
        let _ = report.render();
        let chars = &report.chars;
        let cen = census::census(chars);
        assert_eq!(
            cen.total,
            cen.write_only + cen.read_only + cen.read_write + cen.unaccessed
        );
        let profile = jobs::concurrency_profile(chars);
        let total: f64 = profile.iter().sum();
        assert!(
            events.is_empty() || (total - 1.0).abs() < 1e-6,
            "profile still normalizes: {total}"
        );
        // Cache simulations also tolerate the fragment.
        let index = SessionIndex::build(&events);
        let f8 = compute_cache_sim(&events, &index, 1);
        assert!(f8.hits <= f8.requests);
        let comb = combined_simulation(&events, &index, 1, 4, 16);
        assert!(comb.io_only_hit_rate >= 0.0 && comb.io_only_hit_rate <= 1.0);
    }
}

#[test]
fn truncation_loses_sessions_monotonically() {
    let w = generate(GeneratorConfig::test_scale(0.03));
    let mut last = usize::MAX;
    for fraction in [1.0, 0.6, 0.3, 0.05] {
        let crashed = crash_truncate(&w.trace, fraction);
        let events = postprocess(&crashed);
        let chars = analyze(&events);
        assert!(
            chars.sessions.len() <= last,
            "fewer blocks cannot yield more sessions"
        );
        last = chars.sessions.len();
    }
    assert!(last < w.stats.sessions as usize);
}

#[test]
fn crashed_trace_still_round_trips_the_file_format() {
    use charisma::trace::file::{read_trace, write_trace};
    let w = generate(GeneratorConfig::test_scale(0.02));
    let crashed = crash_truncate(&w.trace, 0.4);
    let mut bytes = Vec::new();
    write_trace(&crashed, &mut bytes).expect("write");
    assert_eq!(read_trace(bytes.as_slice()).expect("read"), crashed);
}

#[test]
fn open_sessions_at_crash_are_visible_but_harmless() {
    let w = generate(GeneratorConfig::test_scale(0.03));
    let crashed = crash_truncate(&w.trace, 0.5);
    let events = postprocess(&crashed);
    let chars = analyze(&events);
    // Some sessions have no close (size_at_close stays 0) — they must
    // still classify and count without skewing temporary detection.
    let unclosed = chars
        .sessions
        .values()
        .filter(|s| s.requests() > 0 && s.size_at_close == 0)
        .count();
    assert!(unclosed > 0, "a crash leaves sessions open");
    let cen = census::census(&chars);
    assert!(cen.temporary_fraction() < 0.2);
}
