//! Cross-crate trace integrity: the generated trace survives the file
//! format, postprocessing is sound, and the census is a partition.

use std::collections::HashMap;

use charisma::core::analyze::SessionClass;
use charisma::core::census;
use charisma::prelude::*;
use charisma::trace::file::{read_trace, write_trace};
use charisma::trace::record::EventBody;

fn workload() -> charisma::workload::GeneratedWorkload {
    generate(GeneratorConfig::test_scale(0.03))
}

#[test]
fn generated_trace_round_trips_through_the_file_format() {
    let w = workload();
    let mut bytes = Vec::new();
    write_trace(&w.trace, &mut bytes).expect("write");
    let back = read_trace(bytes.as_slice()).expect("read");
    assert_eq!(back, w.trace);
    assert_eq!(back.header.compute_nodes, 128);
    assert_eq!(back.header.io_nodes, 10);
    assert_eq!(back.header.block_bytes, 4096);
}

#[test]
fn postprocess_preserves_every_record() {
    let w = workload();
    let ordered = postprocess(&w.trace);
    assert_eq!(ordered.len(), w.trace.event_count());
    // Sorted by (approximate) time.
    assert!(ordered.windows(2).all(|p| p[0].time <= p[1].time));
    // Multiset of record bodies is preserved: compare counts per tag.
    let mut raw_tags: HashMap<u8, usize> = HashMap::new();
    for (_, e) in w.trace.raw_events() {
        *raw_tags.entry(e.body.tag()).or_insert(0) += 1;
    }
    let mut sorted_tags: HashMap<u8, usize> = HashMap::new();
    for e in &ordered {
        *sorted_tags.entry(e.body.tag()).or_insert(0) += 1;
    }
    assert_eq!(raw_tags, sorted_tags);
}

#[test]
fn census_partitions_the_sessions() {
    let w = workload();
    let events = postprocess(&w.trace);
    let chars = analyze(&events);
    let cen = census::census(&chars);
    assert_eq!(
        cen.total,
        cen.write_only + cen.read_only + cen.read_write + cen.unaccessed,
        "the four classes partition the census"
    );
    assert_eq!(cen.total, chars.sessions.len());
    // Every class matches a recount.
    let ro = chars
        .sessions
        .values()
        .filter(|s| s.class() == SessionClass::ReadOnly)
        .count();
    assert_eq!(ro, cen.read_only);
}

#[test]
fn session_lifecycles_are_well_formed() {
    let w = workload();
    let events = postprocess(&w.trace);
    // Every session: opened at least once, closed exactly as many times
    // as opened (per node), and all requests carry a known session.
    let mut open_counts: HashMap<u32, i64> = HashMap::new();
    let mut known: std::collections::HashSet<u32> = Default::default();
    for e in &events {
        match e.body {
            EventBody::Open { session, .. } => {
                known.insert(session);
                *open_counts.entry(session).or_insert(0) += 1;
            }
            EventBody::Close { session, .. } => {
                *open_counts.entry(session).or_insert(0) -= 1;
            }
            EventBody::Read { session, .. } | EventBody::Write { session, .. } => {
                assert!(known.contains(&session), "request on unknown session");
            }
            _ => {}
        }
    }
    let unbalanced = open_counts.values().filter(|&&v| v != 0).count();
    assert_eq!(unbalanced, 0, "opens and closes balance for every session");
}

#[test]
fn drift_correction_beats_raw_local_timestamps() {
    // The paper's justification for the postprocessing step: raw node
    // timestamps misorder cross-node events; the corrected stream should
    // misorder (strictly) fewer job windows. We measure by counting
    // requests that fall outside their session's open..close window.
    let w = workload();
    let corrected = postprocess(&w.trace);

    // Build a "no correction" ordering: sort by raw local timestamps.
    let mut raw: Vec<OrderedEvent> = w
        .trace
        .raw_events()
        .map(|(node, e)| OrderedEvent {
            time: e.local_time,
            node,
            body: e.body,
        })
        .collect();
    raw.sort_by_key(|e| e.time);

    let misordered = |events: &[OrderedEvent]| -> usize {
        let mut live: HashMap<u32, i64> = HashMap::new();
        let mut bad = 0;
        for e in events {
            match e.body {
                EventBody::Open { session, .. } => *live.entry(session).or_insert(0) += 1,
                EventBody::Close { session, .. } => *live.entry(session).or_insert(0) -= 1,
                EventBody::Read { session, .. } | EventBody::Write { session, .. }
                    if live.get(&session).copied().unwrap_or(0) <= 0 =>
                {
                    bad += 1;
                }
                _ => {}
            }
        }
        bad
    };
    let bad_corrected = misordered(&corrected);
    let bad_raw = misordered(&raw);
    assert!(
        bad_corrected <= bad_raw,
        "correction must not make ordering worse: {bad_corrected} vs {bad_raw}"
    );
    assert!(
        bad_corrected * 20 <= corrected.len(),
        "corrected stream is mostly consistent: {bad_corrected}/{}",
        corrected.len()
    );
}
