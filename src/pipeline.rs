//! The unified pipeline: generate → postprocess → analyze in one call.
//!
//! [`Pipeline`] is the single programmatic entry point to the
//! reproduction. It replaces the loose `generate` → `postprocess` →
//! `Report::from_events` triple the examples used to wire by hand, and it
//! is where sharded parallel generation lives: `.shards(n)` runs the
//! simulation on `n` worker threads with a merged event stream that is
//! **bit-identical** to the serial run (see
//! [`charisma_workload::shard`] for how, and `charisma-verify
//! determinism --shards N` for the proof harness).
//!
//! ```
//! use charisma::prelude::*;
//!
//! let out = Pipeline::new().scale(0.01).seed(4994).shards(2).run()?;
//! assert!(out.events.len() > 1000);
//! assert!(out.report.render().contains("Figure 4"));
//! # Ok::<(), charisma::Error>(())
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use charisma_cfs::CfsConfig;
use charisma_core::report::Report;
use charisma_ipsc::{FaultPlan, MachineConfig};
use charisma_obs::{MetricsRegistry, MetricsSnapshot, Probe};
use charisma_serve::{ServeError, Service};
use charisma_store::{ArchiveMeta, ArchiveWriter, StoreError, StoreMetrics};
use charisma_trace::{MergeMetrics, OrderedEvent};
use charisma_workload::shard::try_generate_sharded;
use charisma_workload::{GeneratorConfig, ShardedWorkload};

use crate::error::Error;

/// Where [`Pipeline::run`] should deliver the columnar trace archive.
/// Passed to [`Pipeline::sink`].
#[derive(Clone, Debug)]
pub enum ArchiveSink {
    /// Write the archive file at this path (bytes also kept in the output).
    Path(PathBuf),
    /// Keep the archive bytes in [`PipelineOutput::archive`] only.
    Memory,
    /// Stream the merged events into one tenant of a shared
    /// [`charisma_serve::Service`] — the run becomes one site publishing
    /// into a long-lived multi-tenant archive service instead of writing
    /// its own container. See [`ServeSink`].
    Serve(ServeSink),
}

/// The serve half of [`ArchiveSink::Serve`]: which [`Service`] tenant
/// receives the merged stream, and how many rows ride in each submitted
/// batch.
///
/// The pipeline submits batches during its single merge pass, flushes the
/// tenant at the end, and stores the tenant's published catalog bytes in
/// [`PipelineOutput::archive`]. Those bytes carry the *service's*
/// `(seed, scale)` metadata — configure the [`ServiceConfig`] to match
/// the pipeline when byte-parity with a [`ArchiveSink::Memory`] run
/// matters.
///
/// [`ServiceConfig`]: charisma_serve::ServiceConfig
#[derive(Clone, Debug)]
pub struct ServeSink {
    service: Arc<Service>,
    tenant: usize,
    batch_rows: usize,
}

impl ServeSink {
    /// Target `tenant` of `service`, with the default 512-row batches.
    pub fn new(service: Arc<Service>, tenant: usize) -> Self {
        ServeSink {
            service,
            tenant,
            batch_rows: 512,
        }
    }

    /// Rows per submitted ingest batch (default 512; clamped to ≥ 1).
    /// Purely an ingest-granularity knob: published bytes are identical
    /// for every value.
    #[must_use]
    pub fn batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows.max(1);
        self
    }

    /// The shared service this sink publishes into.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// The tenant index this sink publishes to.
    pub fn tenant(&self) -> usize {
        self.tenant
    }
}

/// Live per-sink state during the merge pass of [`Pipeline::run`].
enum SinkState {
    /// Path/Memory: encode into an in-process [`ArchiveWriter`].
    Writer(ArchiveWriter),
    /// Serve: buffer rows and submit batches to the service; the first
    /// ingest error is parked here and surfaced after the pass (the
    /// analysis stream cannot carry a `Result` mid-flight).
    Serve {
        sink: ServeSink,
        buf: Vec<OrderedEvent>,
        error: Option<ServeError>,
    },
}

/// Builder for one end-to-end run of the reproduction.
///
/// Defaults reproduce the paper: full three-week scale, seed 4994 (SC
/// '94), the NAS iPSC/860 machine and CFS, serial execution.
#[derive(Clone)]
pub struct Pipeline {
    scale: f64,
    seed: u64,
    shards: usize,
    machine: MachineConfig,
    cfs: CfsConfig,
    faults: FaultPlan,
    probe: Option<Arc<dyn Probe>>,
    archive: Option<ArchiveSink>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("scale", &self.scale)
            .field("seed", &self.seed)
            .field("shards", &self.shards)
            .field("machine", &self.machine)
            .field("cfs", &self.cfs)
            .field("faults", &self.faults)
            .field("probe", &self.probe.as_ref().map(|_| "dyn Probe"))
            .field("archive", &self.archive)
            .finish()
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// A pipeline with the paper's defaults.
    pub fn new() -> Self {
        Pipeline {
            scale: 1.0,
            seed: 4994,
            shards: 1,
            machine: MachineConfig::nas_ipsc860(),
            cfs: CfsConfig::nas(),
            faults: FaultPlan::none(),
            probe: None,
            archive: None,
        }
    }

    /// Workload scale: 1.0 is the paper's full population (~3000 jobs);
    /// tests and examples use small fractions.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Master RNG seed (default 4994).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for generation (default 1 = serial).
    ///
    /// The workload is always partitioned into
    /// [`charisma_workload::shard::LOGICAL_SHARDS`] logical shards; this
    /// only sets how many threads execute them, so **every value yields
    /// the same merged stream** (counts above the logical shard count are
    /// capped). `0` is rejected by [`Self::run`].
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Machine to simulate (default: the NAS 128-node iPSC/860).
    #[must_use]
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// File system to simulate (default: the NAS CFS).
    #[must_use]
    pub fn cfs(mut self, cfs: CfsConfig) -> Self {
        self.cfs = cfs;
        self
    }

    /// Fault-injection plan for chaos testing (default:
    /// [`FaultPlan::none`], which attaches no fault state at all — the
    /// run is byte-identical to one without the chaos layer).
    ///
    /// Fault decisions are pure hashes of the plan seed and stable event
    /// identities, so a given plan yields the same trace for every
    /// `shards(n)` worker count. Injected fault activity appears in
    /// [`PipelineOutput::metrics`] under `faults.*` keys.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Attach a [`Probe`] that is notified as the pipeline's phase spans
    /// (`pipeline.generate`, `pipeline.analyze`) are entered and exited —
    /// the hook point for external profilers. Default: none.
    #[must_use]
    pub fn probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Also deliver the merged trace as a [`charisma_store`] columnar
    /// archive to `sink` — a file path, in-memory bytes, or a tenant of a
    /// shared [`charisma_serve::Service`]. The archive is fed from the
    /// same single merge pass as the analysis and is byte-identical for
    /// every `shards(n)` worker count (the `charisma-verify archive` gate
    /// pins this). The bytes are also kept in
    /// [`PipelineOutput::archive`].
    #[must_use]
    pub fn sink(mut self, sink: ArchiveSink) -> Self {
        self.archive = Some(sink);
        self
    }

    /// Write the archive file at `path`.
    ///
    /// Replaced by the general sink form, which writes the same bytes:
    ///
    /// ```
    /// use charisma::{ArchiveSink, Pipeline};
    ///
    /// let dir = std::env::temp_dir().join("charisma-doc-archive");
    /// std::fs::create_dir_all(&dir)?;
    /// let path = dir.join("trace.charisma");
    /// let out = Pipeline::new()
    ///     .scale(0.001)
    ///     .sink(ArchiveSink::Path(path.clone()))
    ///     .run()?;
    /// assert_eq!(std::fs::read(&path)?, out.archive.unwrap());
    /// # std::fs::remove_file(&path)?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[deprecated(since = "0.1.0", note = "use `sink(ArchiveSink::Path(path.into()))`")]
    #[must_use]
    pub fn archive(self, path: impl Into<PathBuf>) -> Self {
        self.sink(ArchiveSink::Path(path.into()))
    }

    /// Keep the archive bytes only in [`PipelineOutput::archive`].
    ///
    /// Replaced by the general sink form, which produces the same bytes:
    ///
    /// ```
    /// use charisma::{ArchiveSink, Pipeline};
    ///
    /// let out = Pipeline::new()
    ///     .scale(0.001)
    ///     .sink(ArchiveSink::Memory)
    ///     .run()?;
    /// assert!(out.archive.is_some());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[deprecated(since = "0.1.0", note = "use `sink(ArchiveSink::Memory)`")]
    #[must_use]
    pub fn archive_in_memory(self) -> Self {
        self.sink(ArchiveSink::Memory)
    }

    /// Run the pipeline: generate the sharded workload, rectify and merge
    /// the per-shard traces, and characterize the merged stream.
    ///
    /// The analysis consumes the k-way merge as a stream, in the same
    /// pass that materializes [`PipelineOutput::events`].
    pub fn run(self) -> Result<PipelineOutput, Error> {
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(Error::InvalidScale(self.scale));
        }
        if self.shards == 0 {
            return Err(Error::InvalidShards(self.shards));
        }
        let config = GeneratorConfig {
            scale: self.scale,
            seed: self.seed,
            machine: self.machine,
            cfs: self.cfs,
            faults: self.faults,
        };
        let registry = match &self.probe {
            Some(p) => MetricsRegistry::with_probe(Arc::clone(p)),
            None => MetricsRegistry::new(),
        };
        let started = Instant::now();
        let workload = {
            let _generate = registry.span("pipeline.generate");
            try_generate_sharded(&config, self.shards)?
        };
        let mut events = Vec::with_capacity(workload.event_count());
        let mut sink_state = match &self.archive {
            None => None,
            Some(ArchiveSink::Path(_) | ArchiveSink::Memory) => {
                let mut w = ArchiveWriter::new(ArchiveMeta {
                    seed: self.seed,
                    scale: self.scale,
                });
                w.attach_metrics(StoreMetrics::register(&registry));
                Some(SinkState::Writer(w))
            }
            Some(ArchiveSink::Serve(sink)) => Some(SinkState::Serve {
                sink: sink.clone(),
                buf: Vec::with_capacity(sink.batch_rows),
                error: None,
            }),
        };
        let report = {
            let _analyze = registry.span("pipeline.analyze");
            let mut merged = workload.merged_events();
            merged.attach_metrics(MergeMetrics::register(&registry));
            Report::from_stream(merged.inspect(|e| {
                events.push(*e);
                match &mut sink_state {
                    Some(SinkState::Writer(w)) => w.push(e),
                    Some(SinkState::Serve { sink, buf, error }) if error.is_none() => {
                        buf.push(*e);
                        if buf.len() >= sink.batch_rows {
                            if let Err(err) = sink.service.submit(sink.tenant, buf) {
                                *error = Some(err);
                            }
                            buf.clear();
                        }
                    }
                    // No sink, or a serve sink already parked on its
                    // first error: nothing further to buffer.
                    _ => {}
                }
            }))
        };
        let archive = match (sink_state, &self.archive) {
            (Some(SinkState::Writer(w)), Some(sink)) => {
                let bytes = w.finish();
                if let ArchiveSink::Path(path) = sink {
                    std::fs::write(path, &bytes).map_err(StoreError::Io)?;
                }
                Some(bytes)
            }
            (Some(SinkState::Serve { sink, buf, error }), _) => {
                if let Some(err) = error {
                    return Err(Error::Serve(err));
                }
                if !buf.is_empty() {
                    sink.service.submit(sink.tenant, &buf)?;
                }
                sink.service.flush(sink.tenant)?;
                Some(sink.service.snapshot(sink.tenant)?.to_bytes())
            }
            _ => None,
        };
        // The deterministic core (counters/gauges/histograms) comes from
        // the simulation and the merge; the facade's own wall-clock
        // artifacts (span timings, throughput) live in the snapshot's
        // quarantined nondeterministic section.
        let mut metrics = workload.metrics.clone();
        metrics.merge(&registry.snapshot());
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let rps = (events.len() as f64 / elapsed).round() as u64;
            metrics.set_rate("pipeline.records_per_sec", rps);
        }
        Ok(PipelineOutput {
            workload,
            events,
            report,
            metrics,
            archive,
        })
    }
}

/// Everything one pipeline run produces.
pub struct PipelineOutput {
    /// The generated workload: per-shard raw traces plus aggregate stats.
    pub workload: ShardedWorkload,
    /// The rectified, deterministically merged event stream.
    pub events: Vec<OrderedEvent>,
    /// The paper's full §4 characterization of that stream.
    pub report: Report,
    /// Metrics from every layer of the run: the shard-merged simulation
    /// counters/gauges/histograms (a pure function of the configuration
    /// and seed — see [`MetricsSnapshot::to_core_json`]) plus the
    /// pipeline's own span timings and throughput rate (wall-clock, kept
    /// under the snapshot's `nondeterministic` section).
    pub metrics: MetricsSnapshot,
    /// The columnar trace archive bytes, when an [`ArchiveSink`] was
    /// configured via [`Pipeline::sink`]. For a [`ArchiveSink::Serve`]
    /// sink these are the tenant's published catalog bytes (under the
    /// service's metadata). Reopen with
    /// [`charisma_store::Archive::from_bytes`] (or `Archive::open` for a
    /// path sink) and query any subset.
    pub archive: Option<Vec<u8>>,
}

impl PipelineOutput {
    /// Aggregate generation stats (jobs, sessions, requests, …).
    pub fn stats(&self) -> &charisma_workload::GenStats {
        &self.workload.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_a_coherent_output() {
        let out = Pipeline::new().scale(0.02).shards(2).run().expect("runs");
        assert_eq!(out.events.len(), out.workload.event_count());
        assert!(out.stats().jobs > 10);
        assert!(out.report.chars.jobs.len() == out.stats().jobs);
        for w in out.events.windows(2) {
            assert!((w[0].time, w[0].node) <= (w[1].time, w[1].node));
        }
    }

    #[test]
    fn metrics_surface_every_layer() {
        let out = Pipeline::new().scale(0.02).shards(2).run().expect("runs");
        assert_eq!(
            out.metrics.counters["workload.jobs"],
            out.stats().jobs as u64
        );
        assert!(out.metrics.counters["engine.events_dispatched"] > 0);
        assert!(out.metrics.counters["cfs.read_requests"] > 0);
        assert_eq!(
            out.metrics.counters["merge.records_merged"],
            out.events.len() as u64
        );
        assert!(out.metrics.timings.contains_key("pipeline.generate"));
        assert!(out.metrics.timings.contains_key("pipeline.analyze"));
        assert!(out.metrics.rates.contains_key("pipeline.records_per_sec"));
        // Wall-clock artifacts stay out of the deterministic core.
        let core = out.metrics.to_core_json();
        assert!(!core.contains("pipeline.generate"));
        assert!(!core.contains("records_per_sec"));
    }

    #[test]
    fn attached_probe_observes_pipeline_spans() {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct CountingProbe {
            enters: AtomicU64,
            exits: AtomicU64,
        }
        impl charisma_obs::Probe for CountingProbe {
            fn span_enter(&self, _name: &'static str) {
                self.enters.fetch_add(1, Ordering::Relaxed);
            }
            fn span_exit(&self, _name: &'static str, _elapsed_ns: u64) {
                self.exits.fetch_add(1, Ordering::Relaxed);
            }
        }

        let probe = Arc::new(CountingProbe::default());
        Pipeline::new()
            .scale(0.01)
            .probe(probe.clone())
            .run()
            .expect("runs");
        assert_eq!(probe.enters.load(Ordering::Relaxed), 2);
        assert_eq!(probe.exits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn chaos_plan_injects_faults_without_breaking_the_run() {
        use charisma_ipsc::FaultPlan;
        let out = Pipeline::new()
            .scale(0.01)
            .shards(2)
            .faults(FaultPlan::chaos_fixture())
            .run()
            .expect("chaos run completes");
        assert!(out.events.len() > 1000);
        assert!(out.metrics.counters["faults.injected"] > 0);
        // Worker count still does not matter under chaos.
        let serial = Pipeline::new()
            .scale(0.01)
            .faults(FaultPlan::chaos_fixture())
            .run()
            .expect("serial chaos run completes");
        assert_eq!(out.metrics.to_core_json(), serial.metrics.to_core_json());
    }

    #[test]
    fn archive_sink_round_trips_and_surfaces_store_metrics() {
        use charisma_store::{Archive, Query};

        let out = Pipeline::new()
            .scale(0.01)
            .shards(2)
            .sink(ArchiveSink::Memory)
            .run()
            .expect("runs");
        let bytes = out.archive.as_deref().expect("archive bytes present");
        let archive = Archive::from_bytes(bytes.to_vec()).expect("parses");
        assert_eq!(archive.rows(), out.events.len() as u64);
        assert_eq!(archive.meta().seed, 4994);
        let reread = archive.query(Query::all()).events().expect("scans");
        assert_eq!(reread, out.events);

        assert_eq!(
            out.metrics.counters["store.rows_written"],
            out.events.len() as u64
        );
        assert!(out.metrics.counters["store.segments_written"] > 0);
        assert_eq!(
            out.metrics.counters["store.bytes_written"],
            bytes.len() as u64
        );
        // Scan-side counters are registered (zero) even with no query run,
        // so the metrics fixture pins the whole store.* namespace.
        assert_eq!(out.metrics.counters["store.segments_pruned"], 0);

        // No sink → no archive, no store.* metrics.
        let plain = Pipeline::new().scale(0.01).run().expect("runs");
        assert!(plain.archive.is_none());
        assert!(!plain.metrics.counters.contains_key("store.rows_written"));
    }

    #[test]
    fn archive_bytes_are_worker_invariant() {
        let a = Pipeline::new()
            .scale(0.01)
            .sink(ArchiveSink::Memory)
            .run()
            .expect("runs");
        let b = Pipeline::new()
            .scale(0.01)
            .shards(4)
            .sink(ArchiveSink::Memory)
            .run()
            .expect("runs");
        assert_eq!(a.archive, b.archive);
    }

    #[test]
    fn serve_sink_publishes_the_same_bytes_as_the_memory_sink() {
        use charisma_serve::{Service, ServiceConfig};

        let mem = Pipeline::new()
            .scale(0.01)
            .sink(ArchiveSink::Memory)
            .run()
            .expect("runs");
        // Service metadata matches the pipeline, so the tenant's catalog
        // is byte-identical to the self-written container.
        let service = Arc::new(Service::new(ServiceConfig {
            seed: 4994,
            scale: 0.01,
            tenants: 2,
            ..ServiceConfig::default()
        }));
        let out = Pipeline::new()
            .scale(0.01)
            .shards(2)
            .sink(ArchiveSink::Serve(
                ServeSink::new(Arc::clone(&service), 1).batch_rows(333),
            ))
            .run()
            .expect("runs");
        assert_eq!(out.archive, mem.archive);
        // The catalog stays live in the service for other readers, and
        // sibling tenants are untouched.
        let snap = service.snapshot(1).expect("snapshots");
        assert_eq!(snap.rows(), out.events.len() as u64);
        assert_eq!(service.snapshot(0).expect("snapshots").rows(), 0);
    }

    #[test]
    fn serve_sink_surfaces_unknown_tenants() {
        use charisma_serve::{Service, ServiceConfig};

        let service = Arc::new(Service::new(ServiceConfig {
            tenants: 1,
            ..ServiceConfig::default()
        }));
        let err = Pipeline::new()
            .scale(0.01)
            .sink(ArchiveSink::Serve(ServeSink::new(service, 3)))
            .run();
        assert!(matches!(err, Err(Error::Serve(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_archive_builders_delegate_to_sink() {
        let via_sink = Pipeline::new()
            .scale(0.01)
            .sink(ArchiveSink::Memory)
            .run()
            .expect("runs");
        let via_deprecated = Pipeline::new()
            .scale(0.01)
            .archive_in_memory()
            .run()
            .expect("runs");
        assert_eq!(via_sink.archive, via_deprecated.archive);

        let path = std::env::temp_dir().join(format!(
            "charisma-pipeline-compat-{}.chstor",
            std::process::id()
        ));
        let out = Pipeline::new()
            .scale(0.01)
            .archive(&path)
            .run()
            .expect("runs");
        let on_disk = std::fs::read(&path).expect("archive file written");
        std::fs::remove_file(&path).ok();
        assert_eq!(Some(on_disk), out.archive);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            Pipeline::new().scale(0.0).run(),
            Err(Error::InvalidScale(_))
        ));
        assert!(matches!(
            Pipeline::new().scale(f64::NAN).run(),
            Err(Error::InvalidScale(_))
        ));
        assert!(matches!(
            Pipeline::new().scale(0.01).shards(0).run(),
            Err(Error::InvalidShards(0))
        ));
    }
}
