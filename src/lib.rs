//! # charisma
//!
//! A full reproduction of *"Dynamic File-Access Characteristics of a
//! Production Parallel Scientific Workload"* (Kotz & Nieuwejaar,
//! Supercomputing '94) — the first CHARISMA study: three weeks of
//! file-system tracing on the 128-node Intel iPSC/860 at NASA Ames, plus
//! trace-driven buffer-cache simulations.
//!
//! The original traces are proprietary, so this crate ships a calibrated
//! synthetic substitute: a simulator of the machine and its Concurrent
//! File System, a production job mix whose generated trace reproduces the
//! paper's published statistics, the paper's full analysis suite, and its
//! cache experiments. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use charisma::prelude::*;
//!
//! // Generate a small workload, collect and rectify its trace...
//! let workload = generate(GeneratorConfig::test_scale(0.01));
//! let events = postprocess(&workload.trace);
//!
//! // ...and characterize it the way the paper does.
//! let report = Report::from_events(&events);
//! let census = charisma::core::census::census(&report.chars);
//! assert!(census.total > 1000 && census.write_only > 0);
//! ```
//!
//! ## Crate map
//!
//! * [`ipsc`] — the iPSC/860: hypercube, subcube allocation, drifting
//!   clocks, message model, discrete-event queue;
//! * [`cfs`] — the Concurrent File System: I/O modes, 4 KB striping,
//!   disks, caches, plus the paper's recommended strided and collective
//!   interfaces;
//! * [`trace`] — CHARISMA trace records, collection, and clock-drift
//!   postprocessing;
//! * [`workload`] — the calibrated synthetic job mix and generator;
//! * [`core`] — the workload characterization (every §4 table and figure);
//! * [`cachesim`] — the trace-driven cache simulations (Figures 8-9 and
//!   the combined experiment).

pub use charisma_cachesim as cachesim;
pub use charisma_cfs as cfs;
pub use charisma_core as core;
pub use charisma_ipsc as ipsc;
pub use charisma_trace as trace;
pub use charisma_workload as workload;

/// The commonly used types and entry points in one import.
pub mod prelude {
    pub use charisma_cachesim::{
        combined_simulation, compute_cache_sim, io_cache_sim, Policy, SessionIndex,
    };
    pub use charisma_cfs::{Access, Cfs, CfsConfig, IoMode, StridedSpec};
    pub use charisma_core::report::Report;
    pub use charisma_core::{analyze, Characterization};
    pub use charisma_ipsc::{Machine, MachineConfig, SimTime};
    pub use charisma_trace::{postprocess, OrderedEvent, Trace};
    pub use charisma_workload::{generate, GeneratorConfig};
}
