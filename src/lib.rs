//! # charisma
//!
//! A full reproduction of *"Dynamic File-Access Characteristics of a
//! Production Parallel Scientific Workload"* (Kotz & Nieuwejaar,
//! Supercomputing '94) — the first CHARISMA study: three weeks of
//! file-system tracing on the 128-node Intel iPSC/860 at NASA Ames, plus
//! trace-driven buffer-cache simulations.
//!
//! The original traces are proprietary, so this crate ships a calibrated
//! synthetic substitute: a simulator of the machine and its Concurrent
//! File System, a production job mix whose generated trace reproduces the
//! paper's published statistics, the paper's full analysis suite, and its
//! cache experiments. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quick start
//!
//! [`Pipeline`] runs the whole study — workload generation, clock
//! rectification, deterministic merge, and the paper's §4
//! characterization — in one call. `.shards(n)` spreads generation over
//! `n` worker threads; the output is bit-identical for every `n`.
//!
//! ```
//! use charisma::prelude::*;
//!
//! let out = Pipeline::new().scale(0.01).seed(4994).shards(2).run()?;
//!
//! let census = charisma::core::census::census(&out.report.chars);
//! assert!(census.total > 1000 && census.write_only > 0);
//! assert!(out.report.render().contains("Figure 4"));
//! # Ok::<(), charisma::Error>(())
//! ```
//!
//! The pre-pipeline entry points (`generate` → `postprocess` →
//! `Report::from_events`) remain available for code that needs one layer
//! at a time — e.g. poking at a raw unrectified trace.
//!
//! ## Crate map
//!
//! * [`ipsc`] — the iPSC/860: hypercube, subcube allocation, drifting
//!   clocks, message model, discrete-event queue;
//! * [`cfs`] — the Concurrent File System: I/O modes, 4 KB striping,
//!   disks, caches, plus the paper's recommended strided and collective
//!   interfaces;
//! * [`trace`] — CHARISMA trace records, collection, clock-drift
//!   postprocessing, and the deterministic k-way shard merge;
//! * [`workload`] — the calibrated synthetic job mix, the generator, and
//!   the sharded parallel driver ([`workload::shard`]);
//! * [`core`] — the workload characterization (every §4 table and figure);
//! * [`cachesim`] — the trace-driven cache simulations (Figures 8-9 and
//!   the combined experiment);
//! * [`store`] — the indexed columnar trace archive and its parallel
//!   predicate-pushdown query engine (`.sink(ArchiveSink::Path(…))` on
//!   the pipeline, [`store::Archive::open`] to reopen and query), now
//!   split into an append-only build side ([`store::SegmentBuilder`] →
//!   [`store::SealedSegment`]) and a read-only serve side
//!   ([`store::ArchiveReader`]);
//! * [`serve`] — the multi-tenant archive service over that split:
//!   bounded-queue ingest with deterministic admission, snapshot-isolated
//!   catalogs, and federated cross-tenant queries
//!   (`.sink(ArchiveSink::Serve(…))` plugs a pipeline run in as one
//!   tenant);
//! * [`obs`] — the deterministic observability layer: counters, gauges,
//!   log2 histograms, span timings, and profiling probes, surfaced as
//!   [`PipelineOutput::metrics`].
//!
//! ## Fault injection
//!
//! `.faults(FaultPlan)` subjects a run to a deterministic chaos plan —
//! disk transients with retry/backoff, I/O-node outages with stripe
//! failover, message delay/drop/duplication, clock jumps — without
//! changing a single workload decision, and with the same output for
//! every worker count. See [`ipsc::faults`] and the README's
//! "Fault injection & chaos testing" section.

pub use charisma_cachesim as cachesim;
pub use charisma_cfs as cfs;
pub use charisma_core as core;
pub use charisma_ipsc as ipsc;
pub use charisma_obs as obs;
pub use charisma_serve as serve;
pub use charisma_store as store;
pub use charisma_trace as trace;
pub use charisma_workload as workload;

mod error;
mod pipeline;

pub use error::Error;
pub use pipeline::{ArchiveSink, Pipeline, PipelineOutput, ServeSink};

/// The commonly used types and entry points in one import.
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::pipeline::{ArchiveSink, Pipeline, PipelineOutput, ServeSink};
    pub use charisma_cachesim::{
        combined_simulation, compute_cache_sim, io_cache_sim, Policy, SessionIndex,
    };
    pub use charisma_cfs::{Access, Cfs, CfsConfig, IoMode, StridedSpec};
    pub use charisma_core::report::Report;
    pub use charisma_core::{analyze, Characterization};
    pub use charisma_ipsc::{FaultPlan, IoNodeDown, Machine, MachineConfig, RetryPolicy, SimTime};
    pub use charisma_obs::{MetricsRegistry, MetricsSnapshot, NoopProbe, Probe};
    pub use charisma_serve::{
        FederatedQuery, ServeError, Service, ServiceConfig, Snapshot, TenantFeed,
    };
    pub use charisma_store::{
        Archive, ArchiveMeta, ArchiveReader, OpClass, OpSet, Query, SealedSegment, SegmentBuilder,
        StoreError,
    };
    pub use charisma_trace::{postprocess, OrderedEvent, Trace};
    pub use charisma_workload::{generate, GeneratorConfig};
}
