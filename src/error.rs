//! The unified error type for the `charisma` facade.
//!
//! Each simulation crate has its own error enum (`CfsError`, the trace
//! codec's `DecodeError`/`TraceFileError`, …). The facade wraps them all
//! in one [`Error`] so every fallible entry point in this crate — and any
//! application built on the prelude — can return `Result<_, charisma::Error>`
//! and use `?` across crate boundaries.

use std::fmt;

use charisma_cfs::CfsError;
use charisma_serve::ServeError;
use charisma_store::StoreError;
use charisma_trace::codec::DecodeError;
use charisma_trace::file::TraceFileError;
use charisma_workload::ShardFailure;

/// Any error the charisma pipeline can raise.
#[derive(Debug)]
pub enum Error {
    /// The pipeline was configured with a non-finite or non-positive
    /// workload scale.
    InvalidScale(f64),
    /// The pipeline was configured with zero worker shards.
    InvalidShards(usize),
    /// A Concurrent File System operation failed.
    Cfs(CfsError),
    /// A trace file could not be read or written.
    TraceFile(TraceFileError),
    /// A trace record could not be decoded.
    Decode(DecodeError),
    /// A shard worker panicked and exhausted its contained-retry budget.
    ShardFailed(ShardFailure),
    /// A columnar trace archive could not be written, opened, or scanned.
    Store(StoreError),
    /// The archive service rejected or failed a serve-sink ingest.
    Serve(ServeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidScale(s) => {
                write!(f, "workload scale must be finite and positive, got {s}")
            }
            Error::InvalidShards(n) => {
                write!(f, "shard worker count must be at least 1, got {n}")
            }
            Error::Cfs(e) => write!(f, "CFS error: {e}"),
            Error::TraceFile(e) => write!(f, "{e}"),
            Error::Decode(e) => write!(f, "trace decode error: {e}"),
            Error::ShardFailed(e) => write!(f, "{e}"),
            Error::Store(e) => write!(f, "trace archive error: {e}"),
            Error::Serve(e) => write!(f, "archive service error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Cfs(e) => Some(e),
            Error::TraceFile(e) => Some(e),
            Error::ShardFailed(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::InvalidScale(_) | Error::InvalidShards(_) | Error::Decode(_) => None,
        }
    }
}

impl From<CfsError> for Error {
    fn from(e: CfsError) -> Self {
        Error::Cfs(e)
    }
}

impl From<TraceFileError> for Error {
    fn from(e: TraceFileError) -> Self {
        Error::TraceFile(e)
    }
}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Self {
        Error::Decode(e)
    }
}

impl From<ShardFailure> for Error {
    fn from(e: ShardFailure) -> Self {
        Error::ShardFailed(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::TraceFile(TraceFileError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = Error::InvalidScale(f64::NAN);
        assert!(e.to_string().contains("scale"));
        let e = Error::InvalidShards(0);
        assert!(e.to_string().contains("at least 1"));
    }

    #[test]
    fn wraps_cfs_errors_with_source() {
        let e: Error = CfsError::NotOpen { session: 7 }.into();
        assert!(matches!(e, Error::Cfs(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn wraps_store_errors_with_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = StoreError::Io(io).into();
        assert!(matches!(e, Error::Store(_)));
        assert!(e.to_string().contains("trace archive"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn wraps_io_errors_as_trace_file() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::TraceFile(TraceFileError::Io(_))));
    }
}
